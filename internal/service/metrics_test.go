package service

import (
	"bytes"
	"math"
	"strconv"
	"strings"
	"sync"
	"testing"
	"time"

	"repro/internal/obs"
)

func TestHistogramQuantileEdgeCases(t *testing.T) {
	t.Run("empty", func(t *testing.T) {
		var h Histogram
		for _, q := range []float64{0, 0.5, 0.99, 1} {
			if got := h.Quantile(q); got != 0 {
				t.Fatalf("Quantile(%v) on empty histogram = %v, want 0", q, got)
			}
		}
		if h.Count() != 0 || h.Sum() != 0 || h.Max() != 0 {
			t.Fatalf("empty histogram not zero: count=%d sum=%v max=%v", h.Count(), h.Sum(), h.Max())
		}
	})

	t.Run("single observation", func(t *testing.T) {
		var h Histogram
		d := 700 * time.Microsecond
		h.Observe(d)
		if h.Count() != 1 || h.Sum() != d || h.Max() != d {
			t.Fatalf("count=%d sum=%v max=%v after one Observe(%v)", h.Count(), h.Sum(), h.Max(), d)
		}
		// Every quantile of a one-sample histogram is clamped to the
		// exact observation — interpolation must not exceed the max.
		for _, q := range []float64{0, 0.01, 0.5, 0.99, 1} {
			got := h.Quantile(q)
			if got <= 0 || got > d {
				t.Fatalf("Quantile(%v) = %v, want in (0, %v]", q, got, d)
			}
		}
	})

	t.Run("q extremes and clamping", func(t *testing.T) {
		var h Histogram
		for _, d := range []time.Duration{3 * time.Microsecond, 80 * time.Microsecond, 5 * time.Millisecond} {
			h.Observe(d)
		}
		if got := h.Quantile(1); got != h.Max() {
			t.Fatalf("Quantile(1) = %v, want max %v", got, h.Max())
		}
		// Out-of-range q clamps rather than panicking or extrapolating.
		if got := h.Quantile(2); got != h.Quantile(1) {
			t.Fatalf("Quantile(2) = %v, want Quantile(1) = %v", got, h.Quantile(1))
		}
		if got := h.Quantile(-1); got != h.Quantile(0) {
			t.Fatalf("Quantile(-1) = %v, want Quantile(0) = %v", got, h.Quantile(0))
		}
		if got := h.Quantile(math.NaN()); got != 0 {
			t.Fatalf("Quantile(NaN) = %v, want 0", got)
		}
		if h.Quantile(0) > h.Quantile(0.5) || h.Quantile(0.5) > h.Quantile(1) {
			t.Fatalf("quantiles not monotone: q0=%v q50=%v q100=%v", h.Quantile(0), h.Quantile(0.5), h.Quantile(1))
		}
	})

	t.Run("negative and overflow durations", func(t *testing.T) {
		var h Histogram
		h.Observe(-time.Second) // clamped to 0, must not corrupt buckets
		h.Observe(time.Duration(math.MaxInt64))
		if h.Count() != 2 {
			t.Fatalf("count = %d, want 2", h.Count())
		}
		counts := h.Buckets()
		if counts[0] != 1 || counts[histBuckets-1] != 1 {
			t.Fatalf("extreme observations landed wrong: first=%d last=%d", counts[0], counts[histBuckets-1])
		}
	})
}

func TestHistogramConcurrent(t *testing.T) {
	var h Histogram
	const goroutines, per = 8, 2000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < per; i++ {
				h.Observe(time.Duration(g*per+i) * time.Microsecond)
				if i%64 == 0 {
					_ = h.Quantile(0.99) // concurrent reads must be safe too
					_ = h.Buckets()
				}
			}
		}(g)
	}
	wg.Wait()
	if got := h.Count(); got != goroutines*per {
		t.Fatalf("count = %d, want %d", got, goroutines*per)
	}
	// The g*per+i arguments enumerate 0..N-1 µs exactly once each.
	wantSum := time.Duration(goroutines*per*(goroutines*per-1)/2) * time.Microsecond
	if got := h.Sum(); got != wantSum {
		t.Fatalf("sum = %v, want %v", got, wantSum)
	}
	if got := h.Max(); got != time.Duration(goroutines*per-1)*time.Microsecond {
		t.Fatalf("max = %v, want %v", got, time.Duration(goroutines*per-1)*time.Microsecond)
	}
}

func TestBucketUpperBoundMonotone(t *testing.T) {
	for b := 1; b < histBuckets; b++ {
		if BucketUpperBound(b) <= BucketUpperBound(b-1) {
			t.Fatalf("BucketUpperBound not increasing at %d: %v <= %v", b, BucketUpperBound(b), BucketUpperBound(b-1))
		}
	}
	if got := BucketUpperBound(0); got != 2*time.Microsecond {
		t.Fatalf("BucketUpperBound(0) = %v, want 2µs", got)
	}
}

// TestPromHistogramCumulative checks the log₂→Prometheus conversion:
// bucket counts must be cumulative and monotone, bounds strictly
// increasing, the +Inf bucket equal to _count, and the whole family
// must pass the exposition linter.
func TestPromHistogramCumulative(t *testing.T) {
	var h Histogram
	durations := []time.Duration{
		1 * time.Microsecond,
		3 * time.Microsecond,
		3 * time.Microsecond,
		100 * time.Microsecond,
		7 * time.Millisecond,
		7 * time.Millisecond,
		90 * time.Millisecond,
	}
	for _, d := range durations {
		h.Observe(d)
	}

	var buf bytes.Buffer
	pw := obs.NewPromWriter(&buf)
	promHistogram(pw, "test_latency_seconds", "test histogram", &h)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()

	if samples, errs := obs.LintExposition(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("exposition lint failed (%d samples): %v\n%s", samples, errs, text)
	}

	var bounds []float64
	var cumulative []int64
	var infCount, count int64 = -1, -1
	for _, line := range strings.Split(text, "\n") {
		switch {
		case strings.HasPrefix(line, "test_latency_seconds_bucket{le=\"+Inf\"}"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad +Inf bucket line %q: %v", line, err)
			}
			infCount = v
		case strings.HasPrefix(line, "test_latency_seconds_bucket{le=\""):
			rest := strings.TrimPrefix(line, "test_latency_seconds_bucket{le=\"")
			end := strings.Index(rest, "\"")
			bound, err := strconv.ParseFloat(rest[:end], 64)
			if err != nil {
				t.Fatalf("bad bound in %q: %v", line, err)
			}
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count in %q: %v", line, err)
			}
			bounds = append(bounds, bound)
			cumulative = append(cumulative, v)
		case strings.HasPrefix(line, "test_latency_seconds_count"):
			v, err := strconv.ParseInt(strings.Fields(line)[1], 10, 64)
			if err != nil {
				t.Fatalf("bad count line %q: %v", line, err)
			}
			count = v
		}
	}

	if len(bounds) == 0 {
		t.Fatalf("no finite buckets emitted:\n%s", text)
	}
	for i := 1; i < len(bounds); i++ {
		if bounds[i] <= bounds[i-1] {
			t.Fatalf("bounds not strictly increasing at %d: %v", i, bounds)
		}
		if cumulative[i] < cumulative[i-1] {
			t.Fatalf("cumulative counts decreased at %d: %v", i, cumulative)
		}
	}
	want := int64(len(durations))
	if count != want || infCount != want {
		t.Fatalf("_count=%d +Inf=%d, want %d", count, infCount, want)
	}
	if last := cumulative[len(cumulative)-1]; last != want {
		t.Fatalf("last finite cumulative bucket = %d, want %d (nothing past the max observation)", last, want)
	}

	// Cross-check a cumulative bucket against the raw counts: every
	// observation ≤ bound must be counted.
	for i, bound := range bounds {
		var manual int64
		for _, d := range durations {
			if d.Seconds() <= bound {
				manual++
			}
		}
		if cumulative[i] != manual {
			t.Fatalf("bucket le=%v holds %d, manual recount says %d", bound, cumulative[i], manual)
		}
	}
}

// TestPromHistogramEmpty: an idle histogram still emits a lintable
// family with just the +Inf bucket and zero sum/count.
func TestPromHistogramEmpty(t *testing.T) {
	var h Histogram
	var buf bytes.Buffer
	pw := obs.NewPromWriter(&buf)
	promHistogram(pw, "idle_seconds", "idle", &h)
	if err := pw.Flush(); err != nil {
		t.Fatal(err)
	}
	text := buf.String()
	if _, errs := obs.LintExposition(strings.NewReader(text)); len(errs) > 0 {
		t.Fatalf("lint: %v\n%s", errs, text)
	}
	if !strings.Contains(text, `idle_seconds_bucket{le="+Inf"} 0`) {
		t.Fatalf("missing zero +Inf bucket:\n%s", text)
	}
	if !strings.Contains(text, "idle_seconds_count 0") {
		t.Fatalf("missing zero count:\n%s", text)
	}
}
