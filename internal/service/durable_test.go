package service

import (
	"context"
	"os"
	"path/filepath"
	"testing"

	hypermis "repro"
	"repro/internal/durable"
	"repro/internal/faultinject"
)

func openDurable(t *testing.T, dir string, cfg durable.Config) *durable.Store {
	t.Helper()
	cfg.Dir = dir
	store, err := durable.Open(cfg)
	if err != nil {
		t.Fatalf("durable.Open: %v", err)
	}
	t.Cleanup(func() { store.Close() })
	return store
}

// TestDurableTierSurvivesRestart: a result cached through one server
// generation is a durable-tier hit for the next generation sharing the
// cache directory — the crash-recovery CI smoke, in-process.
func TestDurableTierSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	h := testInstance(11)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 3}

	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 2, Durable: store})
	res1, cached, err := s.Solve(context.Background(), h, opts)
	if err != nil || cached {
		t.Fatalf("warm solve: cached=%v err=%v", cached, err)
	}
	store.Flush()
	s.Close()
	store.Close()

	store2 := openDurable(t, dir, durable.Config{})
	s2 := New(Config{Workers: 2, Durable: store2, DurableVerify: true})
	defer s2.Close()
	res2, cached, err := s2.Solve(context.Background(), h, opts)
	if err != nil || !cached {
		t.Fatalf("post-restart solve: cached=%v err=%v", cached, err)
	}
	if len(res2.MIS) != len(res1.MIS) {
		t.Fatalf("recovered mask has %d vertices, want %d", len(res2.MIS), len(res1.MIS))
	}
	for i := range res2.MIS {
		if res2.MIS[i] != res1.MIS[i] {
			t.Fatalf("recovered MIS differs at vertex %d", i)
		}
	}
	st := s2.Stats()
	if !st.DurableEnabled || st.DurableHits != 1 || st.DurableRecovered == 0 {
		t.Fatalf("stats = durable hits %d, recovered %d; want 1 hit from a recovered record",
			st.DurableHits, st.DurableRecovered)
	}
	if st.Solves != 0 {
		t.Fatalf("post-restart generation solved %d jobs, want 0 (served from disk)", st.Solves)
	}
	// The durable hit back-fills the memory LRU: the next repeat is a
	// memory hit, not another disk read.
	if _, cached, err := s2.Solve(context.Background(), h, opts); err != nil || !cached {
		t.Fatalf("repeat after durable hit: cached=%v err=%v", cached, err)
	}
	if st := s2.Stats(); st.CacheHits != 1 || st.DurableHits != 1 {
		t.Fatalf("memory hits %d / durable hits %d, want 1 / 1 (LRU back-filled)",
			st.CacheHits, st.DurableHits)
	}
}

// TestDurableVerifyRejectsTamperedRecord: verify-first recovery. A
// record whose mask was tampered with on disk (but whose CRC was fixed
// up to match, i.e. corruption the framing cannot see) is rejected by
// VerifyMIS, evicted, and the solve recomputes the right answer.
func TestDurableVerifyRejectsTamperedRecord(t *testing.T) {
	dir := t.TempDir()
	// A triangle: {0} is a valid MIS; {0, 1} never is.
	h, err := hypermis.FromEdges(3, []hypermis.Edge{{0, 1}, {1, 2}, {0, 2}})
	if err != nil {
		t.Fatal(err)
	}
	opts := hypermis.Options{Algorithm: hypermis.AlgGreedy}

	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 1, Durable: store})
	if _, _, err := s.Solve(context.Background(), h, opts); err != nil {
		t.Fatal(err)
	}
	store.Flush()
	s.Close()
	store.Close()

	// Tamper: rewrite the store with a record claiming extra vertices in
	// the MIS. Easiest honest route — write a fresh store whose record
	// carries a wrong-but-well-formed result under the same key.
	key := JobKey(h, opts)
	if err := os.RemoveAll(dir); err != nil {
		t.Fatal(err)
	}
	forge := openDurable(t, dir, durable.Config{})
	forge.Put(key, &hypermis.Result{
		MIS:       []bool{true, true, false}, // violates edge {0,1}
		Size:      2,
		Algorithm: hypermis.AlgGreedy,
	})
	forge.Flush()
	forge.Close()

	store2 := openDurable(t, dir, durable.Config{})
	s2 := New(Config{Workers: 1, Durable: store2, DurableVerify: true})
	defer s2.Close()
	res, cached, err := s2.Solve(context.Background(), h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("tampered record served as a cache hit")
	}
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		t.Fatalf("recomputed result invalid: %v", err)
	}
	st := s2.Stats()
	if st.DurableVerifyFailed != 1 {
		t.Fatalf("durable_verify_failed_total = %d, want 1", st.DurableVerifyFailed)
	}
	if st.Solves != 1 {
		t.Fatalf("solves = %d, want 1 (rejection degrades to a miss)", st.Solves)
	}
}

// TestDurableWrongLengthMaskRejectedWithoutVerify: even with
// DurableVerify off, a mask whose length disagrees with the instance is
// never served (VerifyMIS would panic on it; the service length-checks
// first).
func TestDurableWrongLengthMaskRejectedWithoutVerify(t *testing.T) {
	dir := t.TempDir()
	h, err := hypermis.FromEdges(3, []hypermis.Edge{{0, 1, 2}})
	if err != nil {
		t.Fatal(err)
	}
	opts := hypermis.Options{Algorithm: hypermis.AlgGreedy}
	key := JobKey(h, opts)

	forge := openDurable(t, dir, durable.Config{})
	forge.Put(key, &hypermis.Result{
		MIS:       []bool{true, false}, // two vertices; the instance has three
		Size:      1,
		Algorithm: hypermis.AlgGreedy,
	})
	forge.Flush()
	forge.Close()

	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 1, Durable: store})
	defer s.Close()
	res, cached, err := s.Solve(context.Background(), h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if cached {
		t.Fatal("wrong-length mask served as a hit")
	}
	if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
		t.Fatalf("recomputed result invalid: %v", err)
	}
	if st := s.Stats(); st.DurableVerifyFailed != 1 {
		t.Fatalf("durable_verify_failed_total = %d, want 1", st.DurableVerifyFailed)
	}
}

// TestDurableChaosDiskFaultsDegradeGracefully: with every disk write
// failing and every read bit-flipped, solves still succeed and stay
// correct — the durable tier degrades to a pass-through, counted in
// write_errors and corrupt_skipped.
func TestDurableChaosDiskFaultsDegradeGracefully(t *testing.T) {
	store := openDurable(t, t.TempDir(), durable.Config{
		Faults: faultinject.New(faultinject.Config{
			DiskWriteErrorRate: 1, DiskBitFlipRate: 1, Seed: 4,
		}),
	})
	s := New(Config{Workers: 2, CacheSize: -1, Durable: store, DurableVerify: true})
	defer s.Close()
	h := testInstance(12)
	opts := hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 9}
	for i := 0; i < 3; i++ {
		res, cached, err := s.Solve(context.Background(), h, opts)
		if err != nil {
			t.Fatalf("solve %d under disk chaos: %v", i, err)
		}
		if cached {
			t.Fatalf("solve %d served from a store that can't retain anything", i)
		}
		if err := hypermis.VerifyMIS(h, res.MIS); err != nil {
			t.Fatalf("solve %d invalid under disk chaos: %v", i, err)
		}
	}
	store.Flush()
	if st := s.Stats(); st.DurableWriteErrors == 0 {
		t.Fatalf("durable_write_errors_total = 0, want > 0 with DiskWriteErrorRate=1")
	}
}

// TestDurableStatsAndPromExposition: the durable_* families appear in
// /v1/stats and /metrics when the tier is enabled and are absent
// otherwise (promcheck lints the enabled exposition in CI).
func TestDurableStatsAndPromExposition(t *testing.T) {
	plain := New(Config{Workers: 1})
	if st := plain.Stats(); st.DurableEnabled {
		t.Fatal("durable_enabled true without a store")
	}
	plain.Close()

	dir := t.TempDir()
	store := openDurable(t, dir, durable.Config{})
	s := New(Config{Workers: 1, Durable: store})
	defer s.Close()
	if _, _, err := s.Solve(context.Background(), testInstance(13), hypermis.Options{Algorithm: hypermis.AlgGreedy}); err != nil {
		t.Fatal(err)
	}
	store.Flush()
	st := s.Stats()
	if !st.DurableEnabled || st.DurableWrites != 1 || st.DurableBytes == 0 {
		t.Fatalf("stats = writes %d, bytes %d; want one persisted record",
			st.DurableWrites, st.DurableBytes)
	}
	segs, _ := filepath.Glob(filepath.Join(dir, "seg-*.log"))
	if len(segs) != st.DurableSegments || len(segs) == 0 {
		t.Fatalf("stats report %d segments, disk holds %d", st.DurableSegments, len(segs))
	}
}
