package service

import (
	"context"
	"fmt"

	hypermis "repro"
	"repro/internal/admit"
)

// WorkKind names a served workload: a single MIS solve, an MIS-peeling
// coloring, or a minimal-transversal (hitting set) computation. The
// kind is part of every cache key (WorkKey) and of the durable tier's
// record version, so results of different kinds can never answer each
// other.
type WorkKind string

// The served workload kinds.
const (
	WorkSolve       WorkKind = "solve"
	WorkColor       WorkKind = "color"
	WorkTransversal WorkKind = "transversal"
)

// ParseWorkKind parses a wire-level kind string ("" selects solve, the
// historical default of the job and batch APIs).
func ParseWorkKind(s string) (WorkKind, error) {
	switch s {
	case "", string(WorkSolve):
		return WorkSolve, nil
	case string(WorkColor):
		return WorkColor, nil
	case string(WorkTransversal):
		return WorkTransversal, nil
	}
	return "", fmt.Errorf("service: unknown work kind %q (want solve, color or transversal)", s)
}

// estimatorLabel is the admission estimator's bucket for a job: color
// jobs run a whole pipeline of solves, so their service times would
// poison the per-algorithm solve EWMA — they get their own
// kind-qualified label. A transversal is one solve plus a linear
// complement, so it shares the solve label.
func estimatorLabel(kind WorkKind, h *hypermis.Hypergraph, opts hypermis.Options) string {
	name := hypermis.ResolveAlgorithm(h, opts.Algorithm).String()
	if kind == WorkColor {
		return "color/" + name
	}
	return name
}

// durableGet dispatches the durable-tier lookup to the kind's typed
// getter; a record of a different kind under the key is a clean miss.
func (s *Server) durableGet(kind WorkKind, key string) (any, bool) {
	switch kind {
	case WorkColor:
		return s.cfg.Durable.GetColor(key)
	case WorkTransversal:
		return s.cfg.Durable.GetTransversal(key)
	default:
		return s.cfg.Durable.Get(key)
	}
}

// durableLenOK checks the recovered answer's length against the
// submitted instance — a wrong-length answer cannot be this instance's
// result and would panic the verifier.
func durableLenOK(kind WorkKind, res any, n int) bool {
	switch kind {
	case WorkColor:
		return len(res.(*hypermis.ColorResult).Colors) == n
	case WorkTransversal:
		return len(res.(*hypermis.TransversalResult).Transversal) == n
	default:
		return len(res.(*hypermis.Result).MIS) == n
	}
}

// durableVerify re-proves a recovered answer against the submitted
// instance (Config.DurableVerify): VerifyMIS for solves,
// VerifyColoring for colorings, VerifyMinimalTransversal for
// transversals — each linear time.
func durableVerify(kind WorkKind, h *hypermis.Hypergraph, res any) error {
	switch kind {
	case WorkColor:
		return hypermis.VerifyColoring(h, res.(*hypermis.ColorResult).Coloring())
	case WorkTransversal:
		return hypermis.VerifyMinimalTransversal(h, res.(*hypermis.TransversalResult).Transversal)
	default:
		return hypermis.VerifyMIS(h, res.(*hypermis.Result).MIS)
	}
}

// durableFill dispatches the write-behind fill to the kind's typed put.
func (s *Server) durableFill(key string, res any) {
	switch r := res.(type) {
	case *hypermis.ColorResult:
		s.cfg.Durable.PutColor(key, r)
	case *hypermis.TransversalResult:
		s.cfg.Durable.PutTransversal(key, r)
	case *hypermis.Result:
		s.cfg.Durable.Put(key, r)
	}
}

// compute runs the job's workload under ctx on the already-granted
// workspace, pool and parallelism carried in j.opts.
func (s *Server) compute(ctx context.Context, j *job) (any, error) {
	switch j.kind {
	case WorkColor:
		return hypermis.ColorByMISCtx(ctx, j.h, j.opts)
	case WorkTransversal:
		return hypermis.MinimalTransversalCtx(ctx, j.h, j.opts)
	default:
		return hypermis.SolveCtx(ctx, j.h, j.opts)
	}
}

// countError bumps the kind's error counter. The top-level Errors
// counter (and the per-algorithm one) stays solve-only so its
// long-standing meaning — failed MIS solves — survives the new
// workloads; color and transversal failures get their own counters.
func (s *Server) countError(kind WorkKind, ac *algCounters) {
	switch kind {
	case WorkColor:
		s.metrics.ColorErrors.Add(1)
	case WorkTransversal:
		s.metrics.TransversalErrors.Add(1)
	default:
		s.metrics.Errors.Add(1)
		if ac != nil {
			ac.Errors.Add(1)
		}
	}
}

// countDone bumps the kind's completion counters. Per-priority solves
// count completed jobs of every kind (the class's share of the
// machine); the top-level Solves counter and the per-algorithm counters
// stay solve-only, mirroring countError.
func (s *Server) countDone(j *job, res any, ac *algCounters) {
	s.metrics.prio(j.prio).Solves.Add(1)
	switch j.kind {
	case WorkColor:
		s.metrics.Colorings.Add(1)
		s.metrics.ColorClasses.Add(int64(res.(*hypermis.ColorResult).NumColors))
	case WorkTransversal:
		s.metrics.Transversals.Add(1)
	default:
		s.metrics.Solves.Add(1)
		if ac != nil {
			ac.Solves.Add(1)
		}
	}
}

// Color computes (or recalls) a proper coloring of h by MIS peeling at
// interactive priority, scheduled exactly like Solve: one queued job
// runs the whole multi-class pipeline on one pooled workspace, and the
// result lands in the same two cache tiers under a color-kind key. The
// boolean reports a cache hit.
func (s *Server) Color(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options) (*hypermis.ColorResult, bool, error) {
	return s.ColorClass(ctx, h, opts, admit.Interactive)
}

// ColorClass is Color under an explicit priority class.
func (s *Server) ColorClass(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (*hypermis.ColorResult, bool, error) {
	res, hit, err := s.workKeyed(ctx, WorkColor, h, opts, WorkKey(WorkColor, h, opts), prio, true)
	if err != nil {
		return nil, hit, err
	}
	return res.(*hypermis.ColorResult), hit, nil
}

// Transversal computes (or recalls) a minimal transversal of h at
// interactive priority — one scheduled solve plus the verified
// complement, cached under a transversal-kind key. The boolean reports
// a cache hit.
func (s *Server) Transversal(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options) (*hypermis.TransversalResult, bool, error) {
	return s.TransversalClass(ctx, h, opts, admit.Interactive)
}

// TransversalClass is Transversal under an explicit priority class.
func (s *Server) TransversalClass(ctx context.Context, h *hypermis.Hypergraph, opts hypermis.Options, prio admit.Priority) (*hypermis.TransversalResult, bool, error) {
	res, hit, err := s.workKeyed(ctx, WorkTransversal, h, opts, WorkKey(WorkTransversal, h, opts), prio, true)
	if err != nil {
		return nil, hit, err
	}
	return res.(*hypermis.TransversalResult), hit, nil
}
