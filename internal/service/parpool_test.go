package service

import (
	"context"
	"runtime"
	"testing"
	"time"

	hypermis "repro"
)

// waitGoroutines polls until the live goroutine count drops back to
// base (manual goleak: the runtime retires exited goroutines lazily,
// so a single snapshot right after Close races the scheduler).
func waitGoroutines(t *testing.T, base int, when string) {
	t.Helper()
	deadline := time.Now().Add(3 * time.Second)
	for {
		n := runtime.NumGoroutine()
		if n <= base {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("%s: %d goroutines alive, baseline %d", when, n, base)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestPoolGoroutinesReleasedOnClose: the server's persistent par pool
// workers (and its job workers) must all exit after Close — no parked
// goroutine survives the server that spawned it.
func TestPoolGoroutinesReleasedOnClose(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 2})
	h := testInstance(41)
	if _, _, err := s.Solve(context.Background(), h, hypermis.Options{Algorithm: hypermis.AlgSBL, Seed: 1, Parallelism: 4}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if st := s.Stats(); st.ParPoolWorkers <= 0 {
		t.Fatalf("par pool not running: %+v", st)
	}
	s.Close()
	s.Close() // idempotent
	waitGoroutines(t, base, "after Close")
}

// TestPoolGoroutinesReleasedOnDrain: the graceful-shutdown path must
// tear the par pool down just like Close does.
func TestPoolGoroutinesReleasedOnDrain(t *testing.T) {
	base := runtime.NumGoroutine()
	s := New(Config{Workers: 2})
	h := testInstance(42)
	if _, _, err := s.Solve(context.Background(), h, hypermis.Options{Algorithm: hypermis.AlgBL, Seed: 2, Parallelism: 2}); err != nil {
		t.Fatalf("solve: %v", err)
	}
	if err := s.Drain(2 * time.Second); err != nil {
		t.Fatalf("drain: %v", err)
	}
	waitGoroutines(t, base, "after Drain")
}
