package service

import (
	"math"
	"sync/atomic"
	"time"

	"repro/internal/admit"
)

// histBuckets is the number of power-of-two latency buckets; bucket b
// counts durations in [2^b, 2^{b+1}) microseconds, so the range spans
// 1µs to ~2^40µs ≈ 13 days — beyond any per-job deadline.
const histBuckets = 41

// Histogram is a lock-free log₂-bucketed latency histogram. The zero
// value is ready to use. Shared by the service metrics and the load
// generator's client-side report.
type Histogram struct {
	counts [histBuckets]atomic.Int64
	max    atomic.Int64 // nanoseconds
	sum    atomic.Int64 // nanoseconds, for Prometheus _sum
}

// Observe records one duration.
func (h *Histogram) Observe(d time.Duration) {
	if d < 0 {
		d = 0
	}
	us := d.Microseconds()
	b := 0
	for us > 1 && b < histBuckets-1 {
		us >>= 1
		b++
	}
	h.counts[b].Add(1)
	h.sum.Add(int64(d))
	for {
		cur := h.max.Load()
		if int64(d) <= cur || h.max.CompareAndSwap(cur, int64(d)) {
			break
		}
	}
}

// Count reports the number of observations.
func (h *Histogram) Count() int64 {
	var total int64
	for i := range h.counts {
		total += h.counts[i].Load()
	}
	return total
}

// Max reports the largest observed duration.
func (h *Histogram) Max() time.Duration { return time.Duration(h.max.Load()) }

// Sum reports the total of all observed durations.
func (h *Histogram) Sum() time.Duration { return time.Duration(h.sum.Load()) }

// Buckets snapshots the per-bucket counts. Bucket b counts durations
// in [2^b, 2^{b+1}) microseconds (bucket 0 starts at 0); the log₂
// geometry maps directly onto cumulative Prometheus `le` buckets — see
// BucketUpperBound and the /metrics exposition.
func (h *Histogram) Buckets() [histBuckets]int64 {
	var out [histBuckets]int64
	for i := range h.counts {
		out[i] = h.counts[i].Load()
	}
	return out
}

// BucketUpperBound reports bucket b's exclusive upper bound — the
// Prometheus `le` value of the cumulative bucket it feeds.
func BucketUpperBound(b int) time.Duration {
	return time.Duration(uint64(1)<<uint(b+1)) * time.Microsecond
}

// Quantile estimates the q-quantile (q in [0,1]) by linear
// interpolation inside the containing bucket, clamped to the exact
// observed maximum (so sparse histograms never report a quantile above
// their max). Zero observations yield 0.
func (h *Histogram) Quantile(q float64) time.Duration {
	if math.IsNaN(q) {
		return 0
	}
	q = math.Max(0, math.Min(1, q))
	total := h.Count()
	if total == 0 {
		return 0
	}
	rank := q * float64(total)
	var seen float64
	for b := 0; b < histBuckets; b++ {
		c := float64(h.counts[b].Load())
		if c == 0 {
			continue
		}
		if seen+c >= rank {
			lo := float64(uint64(1) << uint(b)) // µs lower bound (bucket 0 starts at 0)
			if b == 0 {
				lo = 0
			}
			hi := float64(uint64(1) << uint(b+1))
			frac := (rank - seen) / c
			est := time.Duration((lo + frac*(hi-lo)) * float64(time.Microsecond))
			if max := h.Max(); est > max {
				est = max
			}
			return est
		}
		seen += c
	}
	return h.Max()
}

// Metrics is the scheduler's counter set. All fields are updated
// atomically; read a consistent-enough view via snapshot.
type Metrics struct {
	Enqueued     atomic.Int64
	Solves       atomic.Int64 // completed without error
	Errors       atomic.Int64
	Rejected     atomic.Int64 // queue-full sheds
	CacheHits    atomic.Int64
	CacheMisses  atomic.Int64
	Verifies     atomic.Int64 // HTTP layer
	Generates    atomic.Int64 // HTTP layer
	WideJobs     atomic.Int64 // jobs granted parallelism degree > 1
	ParGranted   atomic.Int64 // sum of granted degrees across jobs
	SolveLatency Histogram    // job wall time, all workload kinds
	// Dual-problem workloads (POST /v1/color, /v1/transversal): completed
	// colorings and the color classes they peeled, completed minimal
	// transversals, and per-kind failures. Solves/Errors above stay
	// solve-only so their long-standing meaning survives the new kinds.
	Colorings         atomic.Int64
	ColorClasses      atomic.Int64
	ColorErrors       atomic.Int64
	Transversals      atomic.Int64
	TransversalErrors atomic.Int64
	// Aggregate per-round solver telemetry, fed by the per-job
	// RoundObserver: outer rounds executed across all jobs, vertices
	// decided in those rounds, and total in-round wall time.
	SolverRounds       atomic.Int64
	SolverRoundDecided atomic.Int64
	SolverRoundNs      atomic.Int64
	// Batch pipeline: requests, items carried (batch_items_total),
	// per-item failures, and the read-to-flush streaming latency of
	// each item's result line.
	BatchRequests    atomic.Int64
	BatchItems       atomic.Int64
	BatchItemErrors  atomic.Int64
	BatchItemLatency Histogram
	// Async jobs: submissions and terminal-state counts; cancel
	// requests count DELETEs accepted (the job may already be terminal).
	JobsSubmitted     atomic.Int64
	JobsDone          atomic.Int64
	JobsFailed        atomic.Int64
	JobsCanceled      atomic.Int64
	JobCancelRequests atomic.Int64
	// QoS / overload robustness: deadline-aware admission rejections,
	// per-client rate-limit rejections (429s), backoff sleeps taken by
	// the blocking submit path (batch items and async jobs), and queued
	// jobs failed fast by a graceful drain.
	AdmissionRejected atomic.Int64
	RateLimited       atomic.Int64
	BatchBackoff      atomic.Int64
	DrainedJobs       atomic.Int64

	// perPrio holds one counter set per admit priority class, indexed
	// by the class value.
	perPrio [admit.NumPriorities]prioCounters

	// perAlg holds the per-algorithm labeled counters behind the
	// hypermisd_algo_* Prometheus families. The map is built once from
	// the solver registry (initPerAlg) and never mutated afterwards, so
	// lock-free reads of its atomic values are safe.
	perAlg map[string]*algCounters
}

// algCounters is one algorithm's labeled counter set: completed
// solves, solve errors, and outer solver rounds executed.
type algCounters struct {
	Solves atomic.Int64
	Errors atomic.Int64
	Rounds atomic.Int64
}

// prioCounters is one priority class's counter set: jobs accepted into
// its queue, jobs shed (queue-full or admission), solves completed.
type prioCounters struct {
	Enqueued atomic.Int64
	Rejected atomic.Int64
	Solves   atomic.Int64
}

// prio returns the counter set for a priority class (clamped, so a
// corrupt value cannot index out of bounds).
func (m *Metrics) prio(p admit.Priority) *prioCounters {
	if int(p) >= admit.NumPriorities {
		p = admit.Background
	}
	return &m.perPrio[p]
}

// initPerAlg installs one counter set per registered solver name.
// Must be called before the metrics are shared (New does).
func (m *Metrics) initPerAlg(names []string) {
	m.perAlg = make(map[string]*algCounters, len(names))
	for _, n := range names {
		m.perAlg[n] = &algCounters{}
	}
}

// alg returns the counter set for a resolved algorithm name (nil for
// names outside the registry — callers nil-check and drop).
func (m *Metrics) alg(name string) *algCounters {
	return m.perAlg[name]
}

// AlgStats is the JSON form of one algorithm's counters in Stats.
type AlgStats struct {
	Solves int64 `json:"solves"`
	Errors int64 `json:"errors"`
	Rounds int64 `json:"rounds"`
}

// PrioStats is the JSON form of one priority class's counters in
// Stats: lifetime accepted/shed/completed plus the class queue's
// current depth.
type PrioStats struct {
	Enqueued   int64 `json:"enqueued"`
	Rejected   int64 `json:"rejected"`
	Solves     int64 `json:"solves"`
	QueueDepth int   `json:"queue_depth"`
}

// Stats is a JSON-ready snapshot of the service state — the payload of
// GET /v1/stats and of the daemon's expvar export.
type Stats struct {
	Workers     int   `json:"workers"`
	QueueDepth  int   `json:"queue_depth"`
	QueueCap    int   `json:"queue_cap"`
	Enqueued    int64 `json:"enqueued"`
	Solves      int64 `json:"solves"`
	Errors      int64 `json:"errors"`
	Rejected    int64 `json:"rejected"`
	CacheHits   int64 `json:"cache_hits"`
	CacheMisses int64 `json:"cache_misses"`
	CacheSize   int   `json:"cache_size"`
	CacheCap    int   `json:"cache_cap"`
	CacheBytes  int64 `json:"cache_bytes"`
	Verifies    int64 `json:"verifies"`
	Generates   int64 `json:"generates"`
	// Dual-problem workloads: completed colorings (colorings_total), the
	// color classes peeled across them (color_classes_total /
	// colorings_total ≈ mean palette size), completed minimal
	// transversals, and per-kind failures. The solves/errors fields above
	// remain MIS-solve-only.
	Colorings         int64 `json:"colorings_total"`
	ColorClasses      int64 `json:"color_classes_total"`
	ColorErrors       int64 `json:"color_errors_total"`
	Transversals      int64 `json:"transversals_total"`
	TransversalErrors int64 `json:"transversal_errors_total"`
	// Per-job parallelism: the token-pool capacity (the aggregate
	// degree bound), how many tokens running jobs hold right now, the
	// per-job degree cap, the number of jobs granted degree > 1, and
	// the sum of granted degrees (par_granted_total / solves ≈ mean
	// degree).
	ParCap            int   `json:"par_cap"`
	ParInUse          int   `json:"par_in_use"`
	MaxJobParallelism int   `json:"max_job_parallelism"`
	WideJobs          int64 `json:"jobs_wide"`
	ParGranted        int64 `json:"par_granted_total"`
	// Persistent parallel worker pool (shared by every job's solve):
	// pool size, workers running a pass right now, cumulative pass
	// handoffs to parked workers, and multi-worker passes that found no
	// parked worker and ran inline on the dispatcher. A rising inline
	// share under load means the pool is undersized — or the grain
	// autotuner is collapsing short rounds to serial, which is the
	// intended endgame behavior.
	ParPoolWorkers int   `json:"par_pool_workers"`
	ParWorkersBusy int64 `json:"par_workers_busy"`
	ParHandoffs    int64 `json:"par_handoffs_total"`
	ParInline      int64 `json:"par_inline_total"`
	// Aggregate solver-round telemetry: total outer rounds across all
	// solves, vertices decided inside them, and the summed in-round
	// wall time (solver_round_ms_total / solver_rounds_total ≈ mean
	// round latency).
	SolverRounds       int64   `json:"solver_rounds_total"`
	SolverRoundDecided int64   `json:"solver_round_decided_total"`
	SolverRoundMs      float64 `json:"solver_round_ms_total"`
	LatencyP50Ms       float64 `json:"latency_p50_ms"`
	LatencyP90Ms       float64 `json:"latency_p90_ms"`
	LatencyP99Ms       float64 `json:"latency_p99_ms"`
	LatencyMaxMs       float64 `json:"latency_max_ms"`
	// Batch pipeline: request/item/error totals, the configured per-
	// request item cap, and streaming latency quantiles — the time from
	// reading an item off the request stream to flushing its result
	// line.
	BatchRequests   int64   `json:"batch_requests"`
	BatchItems      int64   `json:"batch_items_total"`
	BatchItemErrors int64   `json:"batch_item_errors"`
	MaxBatchItems   int     `json:"max_batch_items"`
	BatchStreamP50  float64 `json:"batch_stream_p50_ms"`
	BatchStreamP99  float64 `json:"batch_stream_p99_ms"`
	BatchStreamMax  float64 `json:"batch_stream_max_ms"`
	// Async jobs: lifetime totals by terminal state, cancel requests,
	// the store's live occupancy (jobs_active = non-terminal jobs,
	// job_store_size includes retained terminal jobs) and retention
	// configuration.
	JobsSubmitted     int64   `json:"jobs_submitted"`
	JobsDone          int64   `json:"jobs_done"`
	JobsFailed        int64   `json:"jobs_failed"`
	JobsCanceled      int64   `json:"jobs_canceled"`
	JobCancelRequests int64   `json:"job_cancel_requests"`
	JobsActive        int     `json:"jobs_active"`
	JobStoreSize      int     `json:"job_store_size"`
	JobStoreCap       int     `json:"job_store_cap"`
	JobTTLSeconds     float64 `json:"job_ttl_seconds"`
	// QoS & overload robustness: deadline-aware admission rejections,
	// 429s from the per-client rate limiter (plus the tracked client
	// count), backoff sleeps taken by the blocking submit path, queued
	// jobs failed fast by a drain, whether a drain is in progress, and
	// the jobs inside run() right now.
	AdmissionRejected int64 `json:"admission_rejected_total"`
	RateLimited       int64 `json:"ratelimited_total"`
	RateLimitClients  int   `json:"ratelimit_clients"`
	BatchBackoff      int64 `json:"batch_backoff_total"`
	DrainedJobs       int64 `json:"drained_jobs_total"`
	Draining          bool  `json:"draining"`
	RunningJobs       int   `json:"running_jobs"`
	// Fault injection (all zero unless the server runs with -chaos).
	ChaosErrors     int64 `json:"chaos_injected_errors,omitempty"`
	ChaosDelays     int64 `json:"chaos_injected_delays,omitempty"`
	ChaosQueueFulls int64 `json:"chaos_injected_queuefulls,omitempty"`
	// Durable cache tier (internal/durable; all zero and durable_enabled
	// false unless the server runs with -cachedir). Counters are store
	// lifetime; entries/segments/bytes are current occupancy.
	DurableEnabled        bool  `json:"durable_enabled"`
	DurableHits           int64 `json:"durable_hits_total"`
	DurableMisses         int64 `json:"durable_misses_total"`
	DurableWrites         int64 `json:"durable_writes_total"`
	DurableWriteErrors    int64 `json:"durable_write_errors_total"`
	DurableRecovered      int64 `json:"durable_recovered_total"`
	DurableCorruptSkipped int64 `json:"durable_corrupt_skipped_total"`
	DurableCompactions    int64 `json:"durable_compactions_total"`
	DurableVerifyFailed   int64 `json:"durable_verify_failed_total"`
	DurableEntries        int   `json:"durable_entries"`
	DurableSegments       int   `json:"durable_segments"`
	DurableBytes          int64 `json:"durable_bytes"`
	// Per-priority counters keyed by class name (interactive / batch /
	// background).
	PerPriority map[string]PrioStats `json:"per_priority,omitempty"`
	// Per-algorithm counters keyed by resolved solver name (AlgAuto
	// resolves before counting, so "auto" never appears).
	PerAlgorithm map[string]AlgStats `json:"per_algorithm,omitempty"`
	// Flight recorder: traces recorded since start (0 when tracing is
	// disabled).
	TracesRecorded uint64 `json:"traces_recorded"`
}

func (m *Metrics) snapshot() Stats {
	ms := func(d time.Duration) float64 { return float64(d) / float64(time.Millisecond) }
	var perAlg map[string]AlgStats
	if m.perAlg != nil {
		perAlg = make(map[string]AlgStats, len(m.perAlg))
		for name, c := range m.perAlg {
			perAlg[name] = AlgStats{
				Solves: c.Solves.Load(),
				Errors: c.Errors.Load(),
				Rounds: c.Rounds.Load(),
			}
		}
	}
	perPrio := make(map[string]PrioStats, admit.NumPriorities)
	for p := 0; p < admit.NumPriorities; p++ {
		c := &m.perPrio[p]
		perPrio[admit.Priority(p).String()] = PrioStats{
			Enqueued: c.Enqueued.Load(),
			Rejected: c.Rejected.Load(),
			Solves:   c.Solves.Load(),
		}
	}
	return Stats{
		PerAlgorithm:       perAlg,
		PerPriority:        perPrio,
		AdmissionRejected:  m.AdmissionRejected.Load(),
		RateLimited:        m.RateLimited.Load(),
		BatchBackoff:       m.BatchBackoff.Load(),
		DrainedJobs:        m.DrainedJobs.Load(),
		Enqueued:           m.Enqueued.Load(),
		Solves:             m.Solves.Load(),
		Errors:             m.Errors.Load(),
		Rejected:           m.Rejected.Load(),
		CacheHits:          m.CacheHits.Load(),
		CacheMisses:        m.CacheMisses.Load(),
		Verifies:           m.Verifies.Load(),
		Generates:          m.Generates.Load(),
		Colorings:          m.Colorings.Load(),
		ColorClasses:       m.ColorClasses.Load(),
		ColorErrors:        m.ColorErrors.Load(),
		Transversals:       m.Transversals.Load(),
		TransversalErrors:  m.TransversalErrors.Load(),
		WideJobs:           m.WideJobs.Load(),
		ParGranted:         m.ParGranted.Load(),
		SolverRounds:       m.SolverRounds.Load(),
		SolverRoundDecided: m.SolverRoundDecided.Load(),
		SolverRoundMs:      float64(m.SolverRoundNs.Load()) / float64(time.Millisecond),
		LatencyP50Ms:       ms(m.SolveLatency.Quantile(0.50)),
		LatencyP90Ms:       ms(m.SolveLatency.Quantile(0.90)),
		LatencyP99Ms:       ms(m.SolveLatency.Quantile(0.99)),
		LatencyMaxMs:       ms(m.SolveLatency.Max()),
		BatchRequests:      m.BatchRequests.Load(),
		BatchItems:         m.BatchItems.Load(),
		BatchItemErrors:    m.BatchItemErrors.Load(),
		BatchStreamP50:     ms(m.BatchItemLatency.Quantile(0.50)),
		BatchStreamP99:     ms(m.BatchItemLatency.Quantile(0.99)),
		BatchStreamMax:     ms(m.BatchItemLatency.Max()),
		JobsSubmitted:      m.JobsSubmitted.Load(),
		JobsDone:           m.JobsDone.Load(),
		JobsFailed:         m.JobsFailed.Load(),
		JobsCanceled:       m.JobsCanceled.Load(),
		JobCancelRequests:  m.JobCancelRequests.Load(),
	}
}
