package service

import (
	"container/list"
	"sync"
	"unsafe"

	hypermis "repro"
)

// lruCache is a mutex-guarded LRU map from canonical work key to
// result — a solve, coloring or transversal per the key's workload
// kind — bounded both by entry count and by an approximate byte budget
// (each entry is charged entryCost: its n-length answer plus its
// per-round trace — without the budget, a cache of maximal-size
// instances would hold entries × maxInstanceN bytes).
// Results are immutable once computed (deterministic workloads), so
// entries are shared, never copied.
type lruCache struct {
	mu       sync.Mutex
	cap      int
	maxBytes int64
	curBytes int64
	ll       *list.List // front = most recently used
	idx      map[string]*list.Element
}

type lruEntry struct {
	key  string
	val  any
	cost int64
}

func newLRUCache(capacity int, maxBytes int64) *lruCache {
	return &lruCache{
		cap:      capacity,
		maxBytes: maxBytes,
		ll:       list.New(),
		idx:      make(map[string]*list.Element, capacity),
	}
}

// entryCost approximates a result's resident weight: the n-length
// answer (mask bytes, or 8-byte ints for a coloring's color vector),
// the per-round trace records (?trace=1 results carry one per solver
// round — for O(√n)-round algorithms the trace can outweigh the mask,
// so it must be charged too), and a flat allowance for the struct, key
// and list bookkeeping.
func entryCost(val any) int64 {
	const traceRecBytes = int64(unsafe.Sizeof(hypermis.RoundTrace{}))
	const classBytes = int64(unsafe.Sizeof(hypermis.ColorClass{}))
	switch v := val.(type) {
	case *hypermis.Result:
		return int64(len(v.MIS)) + int64(len(v.Trace))*traceRecBytes + 64
	case *hypermis.TransversalResult:
		return int64(len(v.Transversal)) + int64(len(v.Trace))*traceRecBytes + 64
	case *hypermis.ColorResult:
		cost := int64(8*len(v.Colors)) + int64(len(v.Classes))*classBytes + 64
		for _, c := range v.Classes {
			cost += int64(len(c.Trace)) * traceRecBytes
		}
		return cost
	}
	return 64
}

// Get returns the cached result for key, refreshing its recency.
func (c *lruCache) Get(key string) (any, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	el, ok := c.idx[key]
	if !ok {
		return nil, false
	}
	c.ll.MoveToFront(el)
	return el.Value.(*lruEntry).val, true
}

// Put inserts or refreshes key, evicting least recently used entries
// while either bound (entry count, byte budget) is exceeded.
func (c *lruCache) Put(key string, val any) {
	c.mu.Lock()
	defer c.mu.Unlock()
	if el, ok := c.idx[key]; ok {
		ent := el.Value.(*lruEntry)
		c.curBytes += entryCost(val) - ent.cost
		ent.val = val
		ent.cost = entryCost(val)
		c.ll.MoveToFront(el)
	} else {
		ent := &lruEntry{key: key, val: val, cost: entryCost(val)}
		c.idx[key] = c.ll.PushFront(ent)
		c.curBytes += ent.cost
	}
	for c.ll.Len() > 1 && (c.ll.Len() > c.cap || (c.maxBytes > 0 && c.curBytes > c.maxBytes)) {
		oldest := c.ll.Back()
		ent := oldest.Value.(*lruEntry)
		c.ll.Remove(oldest)
		delete(c.idx, ent.key)
		c.curBytes -= ent.cost
	}
}

// Len reports the number of cached entries.
func (c *lruCache) Len() int {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.ll.Len()
}

// Bytes reports the approximate cached result weight.
func (c *lruCache) Bytes() int64 {
	c.mu.Lock()
	defer c.mu.Unlock()
	return c.curBytes
}
