package service

import (
	"log/slog"
	"net/http"
	"strconv"
	"strings"
	"time"

	"repro/internal/obs"
)

// TraceHeader carries the request's trace id on every traced response;
// quote it to GET /v1/debug/requests?trace= to pull the span breakdown.
const TraceHeader = "X-Hypermis-Trace"

// statusWriter captures the response status for the request log and
// trace while staying transparent to the handlers underneath: Flush
// and Unwrap keep NDJSON streaming (http.Flusher) and
// http.ResponseController (EnableFullDuplex) working through the wrap.
type statusWriter struct {
	http.ResponseWriter
	status int
}

func (w *statusWriter) WriteHeader(code int) {
	if w.status == 0 {
		w.status = code
	}
	w.ResponseWriter.WriteHeader(code)
}

func (w *statusWriter) Write(b []byte) (int, error) {
	if w.status == 0 {
		w.status = http.StatusOK
	}
	return w.ResponseWriter.Write(b)
}

func (w *statusWriter) Flush() {
	if f, ok := w.ResponseWriter.(http.Flusher); ok {
		f.Flush()
	}
}

// Unwrap exposes the underlying writer to http.ResponseController.
func (w *statusWriter) Unwrap() http.ResponseWriter { return w.ResponseWriter }

// endpointLabel normalizes a request to its route label: the method
// plus the path with the job id collapsed, so all /v1/jobs/{id}
// lookups aggregate under one endpoint in traces and logs.
func endpointLabel(r *http.Request) string {
	path := r.URL.Path
	if strings.HasPrefix(path, "/v1/jobs/") {
		path = "/v1/jobs/{id}"
	}
	return r.Method + " " + path
}

// withObs wraps the mux with per-request observability: a Trace
// attached to the context and announced via TraceHeader, recorded into
// the flight recorder at completion, plus one structured request log.
// With tracing disabled and no logger it returns the handler untouched
// — the disabled path costs nothing.
func (s *Server) withObs(h http.Handler) http.Handler {
	if s.recorder == nil && s.logger == nil {
		return h
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		endpoint := endpointLabel(r)
		var tr *obs.Trace
		if s.recorder != nil {
			tr = obs.NewTrace(endpoint)
			w.Header().Set(TraceHeader, tr.ID())
			r = r.WithContext(obs.With(r.Context(), tr))
		}
		sw := &statusWriter{ResponseWriter: w}
		start := time.Now()
		h.ServeHTTP(sw, r)
		status := sw.status
		if status == 0 {
			status = http.StatusOK
		}
		if tr != nil {
			tr.Finish(status)
			s.recorder.Record(tr.Snapshot())
		}
		if s.logger != nil {
			s.logger.LogAttrs(r.Context(), slog.LevelInfo, "request",
				slog.String("endpoint", endpoint),
				slog.Int("status", status),
				slog.Float64("duration_ms", float64(time.Since(start))/float64(time.Millisecond)),
				slog.String("trace", tr.ID()),
			)
		}
	})
}

// debugRequestsResponse is the JSON body of GET /v1/debug/requests:
// the flight recorder's two retention sets after filtering.
type debugRequestsResponse struct {
	TracesRecorded uint64            `json:"traces_recorded"`
	RecentCap      int               `json:"recent_cap"`
	SlowestCap     int               `json:"slowest_cap"`
	Recent         []obs.TraceRecord `json:"recent"`
	Slowest        []obs.TraceRecord `json:"slowest"`
}

// handleDebugRequests serves the flight recorder. Query parameters:
// min_ms (minimum duration), endpoint (substring match), trace (exact
// trace id), limit (cap on each returned list, default 64).
func (s *Server) handleDebugRequests(w http.ResponseWriter, r *http.Request) {
	if s.recorder == nil {
		httpError(w, http.StatusNotFound, "tracing is disabled on this server")
		return
	}
	q := r.URL.Query()
	var f obs.Filter
	if v := q.Get("min_ms"); v != "" {
		ms, err := strconv.ParseFloat(v, 64)
		if err != nil || ms < 0 {
			httpError(w, http.StatusBadRequest, "bad min_ms %q", v)
			return
		}
		f.MinDurationMs = ms
	}
	f.Endpoint = q.Get("endpoint")
	f.TraceID = q.Get("trace")
	limit := 64
	if v := q.Get("limit"); v != "" {
		n, err := strconv.Atoi(v)
		if err != nil || n < 1 {
			httpError(w, http.StatusBadRequest, "bad limit %q", v)
			return
		}
		limit = n
	}
	recent, slowest := s.recorder.Snapshot(f)
	if len(recent) > limit {
		recent = recent[:limit]
	}
	if len(slowest) > limit {
		slowest = slowest[:limit]
	}
	writeJSON(w, http.StatusOK, debugRequestsResponse{
		TracesRecorded: s.recorder.Recorded(),
		RecentCap:      s.cfg.TraceRecent,
		SlowestCap:     s.cfg.TraceSlowest,
		Recent:         recent,
		Slowest:        slowest,
	})
}
