package core

import (
	"errors"
	"math"
	"testing"

	"repro/internal/hypergraph"
	"repro/internal/par"
	"repro/internal/rng"
)

func mixed(seed uint64, n, m, lo, hi int) *hypergraph.Hypergraph {
	return hypergraph.RandomMixed(rng.New(seed), n, m, lo, hi)
}

func TestPaperParamsShape(t *testing.T) {
	p := PaperParams(1 << 16)
	if p.P <= 0 || p.P >= 1 {
		t.Fatalf("p = %v", p.P)
	}
	if p.D < 2 {
		t.Fatalf("d = %d", p.D)
	}
	if p.MinVertices < 1 {
		t.Fatalf("minVertices = %d", p.MinVertices)
	}
	// At experimental scale the paper's α ≈ ½ makes 1/p² ≈ n: the
	// documented degeneracy. Check it is acknowledged by the value.
	if p.MinVertices < 1000 {
		t.Fatalf("paper params at n=2^16 should have large tail threshold, got %d", p.MinVertices)
	}
}

func TestDeriveParamsEventBBudget(t *testing.T) {
	n, m := 1<<14, 1<<14
	prm := DeriveParams(n, m, 0.25)
	// The derived d must make r·m·p^{d+1} ≤ 1/n approximately hold.
	r := ExpectedRounds(n, prm.P)
	bound := r * float64(m) * math.Pow(prm.P, float64(prm.D+1))
	if bound > 1.5/float64(n)*10 { // generous slack for ceil rounding
		t.Fatalf("event-B budget violated: r·m·p^(d+1) = %v", bound)
	}
	if prm.MinVertices != int(math.Ceil(1/(prm.P*prm.P))) {
		t.Fatalf("minVertices = %d", prm.MinVertices)
	}
}

func TestDeriveParamsBadAlphaFallsBack(t *testing.T) {
	a := DeriveParams(1000, 1000, 0)
	b := DeriveParams(1000, 1000, 0.25)
	if a.P != b.P || a.D != b.D {
		t.Fatal("alpha=0 should fall back to 0.25")
	}
}

func TestEdgeBudgetMonotone(t *testing.T) {
	if EdgeBudget(1<<20) < EdgeBudget(1<<10) {
		t.Fatal("edge budget should grow with n")
	}
}

func TestSBLSmallMIS(t *testing.T) {
	h := mixed(1, 60, 100, 2, 6)
	res, err := Run(h, rng.New(1), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestSBLAlwaysMISAcrossSeeds(t *testing.T) {
	for seed := uint64(0); seed < 15; seed++ {
		h := mixed(seed+100, 80, 150, 2, 8)
		res, err := Run(h, rng.New(seed), nil, Options{VerifyEachRound: true})
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestSBLDirectBLPath(t *testing.T) {
	// Input dimension 2 with a derived cap ≥ 2 triggers line 26.
	h := hypergraph.RandomGraph(rng.New(5), 50, 80)
	res, err := Run(h, rng.New(2), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !res.DirectBL {
		t.Fatal("dimension-2 input should take the direct BL path")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestSBLSamplingLoopRuns(t *testing.T) {
	// Large-dimension edges force the sampling path; pick α so the loop
	// has room (1/p² ≪ n).
	h := mixed(7, 400, 300, 2, 12)
	res, err := Run(h, rng.New(3), nil, Options{Alpha: 0.3, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectBL {
		t.Skip("derived D exceeded input dimension; no sampling to test")
	}
	if res.Rounds == 0 {
		t.Fatal("sampling loop never ran")
	}
	if len(res.Stats) != res.Rounds {
		t.Fatalf("stats %d != rounds %d", len(res.Stats), res.Rounds)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	for _, st := range res.Stats {
		if st.SampledDim > res.Params.D {
			t.Fatalf("round %d: sampled dim %d > cap %d", st.Round, st.SampledDim, res.Params.D)
		}
		if st.Blue+st.Red != st.Sampled {
			t.Fatalf("round %d: blue %d + red %d != sampled %d", st.Round, st.Blue, st.Red, st.Sampled)
		}
	}
}

func TestSBLGreedyTail(t *testing.T) {
	h := mixed(9, 200, 250, 2, 10)
	res, err := Run(h, rng.New(4), nil, Options{Alpha: 0.3, Tail: TailGreedy})
	if err != nil {
		t.Fatal(err)
	}
	if res.TailUsed != TailGreedy {
		t.Fatal("wrong tail solver recorded")
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestSBLDeterministic(t *testing.T) {
	h := mixed(11, 150, 200, 2, 9)
	a, err := Run(h, rng.New(6), nil, Options{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(h, rng.New(6), nil, Options{Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	for v := range a.InIS {
		if a.InIS[v] != b.InIS[v] {
			t.Fatal("same seed, different MIS")
		}
	}
}

func TestSBLEdgeless(t *testing.T) {
	h := hypergraph.NewBuilder(40).MustBuild()
	res, err := Run(h, rng.New(7), nil, Options{})
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range res.InIS {
		if !in {
			t.Fatalf("vertex %d missing from MIS of edgeless hypergraph", v)
		}
	}
}

func TestSBLFailHardPolicy(t *testing.T) {
	// Force event B: dimension cap 2 with big edges and p = 0.9 makes a
	// fully-sampled size-3 edge overwhelmingly likely.
	h := mixed(13, 60, 100, 3, 6)
	_, err := Run(h, rng.New(8), nil, Options{
		Params:   Params{P: 0.9, D: 2, MinVertices: 1},
		OnEventB: FailHard,
	})
	if !errors.Is(err, ErrEventB) {
		t.Fatalf("got %v, want ErrEventB", err)
	}
}

func TestSBLRetryRoundSurvivesEventB(t *testing.T) {
	// Moderate p with tight cap: retries should eventually find a
	// conforming sample and the run must still produce a MIS.
	h := mixed(17, 120, 80, 3, 5)
	res, err := Run(h, rng.New(9), nil, Options{
		Params:     Params{P: 0.15, D: 3, MinVertices: 16},
		RetryLimit: 200,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestSBLRestartAllPolicy(t *testing.T) {
	h := mixed(19, 100, 60, 3, 5)
	res, err := Run(h, rng.New(10), nil, Options{
		Params:     Params{P: 0.25, D: 3, MinVertices: 10},
		OnEventB:   RestartAll,
		RetryLimit: 500,
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
}

func TestSBLCostAccounting(t *testing.T) {
	h := mixed(23, 100, 150, 2, 8)
	var cost par.Cost
	if _, err := Run(h, rng.New(11), &cost, Options{Alpha: 0.3}); err != nil {
		t.Fatal(err)
	}
	if cost.Work() == 0 || cost.Depth() == 0 || cost.Work() < cost.Depth() {
		t.Fatalf("bad cost: work=%d depth=%d", cost.Work(), cost.Depth())
	}
}

func TestSBLSunflowerAndLinear(t *testing.T) {
	s := rng.New(29)
	hs := []*hypergraph.Hypergraph{
		hypergraph.Sunflower(s, 120, 2, 3, 12),
		hypergraph.Linear(s, 200, 60, 3),
		hypergraph.Star(s, 100, 50, 4),
	}
	for i, h := range hs {
		res, err := Run(h, rng.New(uint64(i)), nil, Options{Alpha: 0.3})
		if err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
		if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
			t.Fatalf("instance %d: %v", i, err)
		}
	}
}

func TestSBLPaperParamsDegenerateToTail(t *testing.T) {
	// With PaperParams at small n, MinVertices ≈ n: the loop is skipped
	// and the tail solves everything. The run must still be a MIS.
	h := mixed(31, 100, 120, 2, 10)
	prm := PaperParams(100)
	res, err := Run(h, rng.New(12), nil, Options{Params: prm})
	if err != nil {
		t.Fatal(err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	if !res.DirectBL && res.Rounds > 2 {
		t.Fatalf("paper params at n=100 should degenerate, ran %d rounds", res.Rounds)
	}
}

func BenchmarkSBL(b *testing.B) {
	h := mixed(1, 1000, 1500, 2, 10)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := Run(h, rng.New(uint64(i)), nil, Options{Alpha: 0.3}); err != nil {
			b.Fatal(err)
		}
	}
}

func TestSBLRestartsReported(t *testing.T) {
	// Under RestartAll with forced event B, successful runs should
	// report how many full restarts were consumed.
	h := mixed(41, 80, 60, 3, 5)
	res, err := Run(h, rng.New(14), nil, Options{
		Params:     Params{P: 0.35, D: 3, MinVertices: 8},
		OnEventB:   RestartAll,
		RetryLimit: 2000,
	})
	if err != nil {
		t.Skipf("all restarts failed (acceptable at these hostile params): %v", err)
	}
	if err := hypergraph.VerifyMIS(h, res.InIS); err != nil {
		t.Fatal(err)
	}
	// Restarts is ≥ 0 and counts attempts before the successful one.
	if res.Restarts < 0 {
		t.Fatalf("restarts = %d", res.Restarts)
	}
}

func TestSBLStatsRoundsConsistent(t *testing.T) {
	h := mixed(43, 300, 280, 2, 12)
	res, err := Run(h, rng.New(15), nil, Options{Alpha: 0.3, CollectStats: true})
	if err != nil {
		t.Fatal(err)
	}
	if res.DirectBL {
		t.Skip("took the direct path")
	}
	// Undecided counts must be strictly decreasing across rounds and all
	// rounds must sample within the cap.
	prev := 1 << 30
	for _, st := range res.Stats {
		if st.Undecided >= prev {
			t.Fatalf("round %d: undecided %d not decreasing (prev %d)", st.Round, st.Undecided, prev)
		}
		prev = st.Undecided
		if st.Undecided-st.Sampled < 0 {
			t.Fatalf("round %d: sampled %d > undecided %d", st.Round, st.Sampled, st.Undecided)
		}
	}
	if res.TailSize >= res.Params.MinVertices {
		t.Fatalf("tail size %d ≥ threshold %d", res.TailSize, res.Params.MinVertices)
	}
}
