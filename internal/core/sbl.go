package core

import (
	"context"
	"errors"
	"fmt"
	"math/bits"

	"repro/internal/bitset"
	"repro/internal/bl"
	"repro/internal/greedy"
	"repro/internal/hypergraph"
	"repro/internal/kuw"
	"repro/internal/par"
	"repro/internal/rng"
	"repro/internal/solver"
)

// TailSolver selects the algorithm SBL finishes with once the residual
// instance has fewer than Params.MinVertices undecided vertices.
type TailSolver int

const (
	// TailKUW uses the Karp–Upfal–Wigderson parallel algorithm (the
	// paper's default on line 23 of Algorithm 1).
	TailKUW TailSolver = iota
	// TailGreedy uses the sequential linear-time solver (the paper's
	// stated alternative: "the algorithm that takes time linear in the
	// number of vertices").
	TailGreedy
)

// FailPolicy selects how an event-B failure (a sampled edge larger than
// Params.D) is handled.
type FailPolicy int

const (
	// RetryRound redraws the round's sample (up to Options.RetryLimit
	// times). Event B has probability ≤ 1/n per run, so retries are
	// rare; this policy keeps completed rounds.
	RetryRound FailPolicy = iota
	// RestartAll discards all progress and restarts from the input
	// hypergraph — the literal reading of the paper's "we declare
	// failure and start over".
	RestartAll
	// FailHard returns ErrEventB immediately (used by the failure-rate
	// experiment T10 to measure the raw event probability).
	FailHard
)

// Options configures an SBL run.
type Options struct {
	// Ctx, if non-nil, is checked at the top of every sampling round and
	// propagated into the BL subroutine and the KUW tail; the run returns
	// ctx.Err() as soon as the context is done.
	Ctx context.Context

	// Par bounds the worker parallelism of the per-round passes and is
	// propagated into the BL subroutine and the KUW tail (zero value =
	// whole machine). Output is identical for any engine.
	Par par.Engine

	// Params overrides the algorithm parameters; the zero value derives
	// them via DeriveParams(n, m, 0.25).
	Params Params
	// Alpha is used instead of 0.25 when Params is zero and Alpha > 0.
	Alpha float64
	// Tail selects the finishing solver (default TailKUW).
	Tail TailSolver
	// OnEventB selects failure handling (default RetryRound).
	OnEventB FailPolicy
	// RetryLimit bounds per-round retries under RetryRound and total
	// restarts under RestartAll (0 = default 64).
	RetryLimit int
	// MaxRounds bounds sampling rounds (0 = default 4·ExpectedRounds +
	// 64); exceeding it returns ErrRoundLimit.
	MaxRounds int
	// BL configures the subroutine (zero value = bl.DefaultOptions()).
	BL bl.Options
	// CollectStats records per-round counters.
	CollectStats bool
	// VerifyEachRound re-checks invariant I3 (the running independent
	// set is independent in the *original* hypergraph) after every
	// round. O(m·d) per round; meant for tests.
	VerifyEachRound bool

	// Ws, if non-nil, supplies the run's reusable buffers: the sampling
	// masks, the round arenas, and — through Ws.Sub() — the BL
	// subroutine's and the KUW tail's buffers (nil = a fresh workspace).
	// Must not be shared with a concurrent run.
	Ws *solver.Workspace

	// Observer, if non-nil, receives one telemetry record per sampling
	// round (the BL subroutine's stages are not observed).
	Observer solver.RoundObserver
}

// RoundStat records one sampling round.
type RoundStat struct {
	Round      int     // 0-based round index
	Undecided  int     // undecided vertices entering the round (n_i)
	Edges      int     // residual edges entering the round
	Sampled    int     // |V'|
	SampledDim int     // dimension of H' (after retries)
	SampledM   int     // edges of H'
	Blue       int     // vertices BL added to the IS
	Red        int     // sampled vertices decided out
	BLStages   int     // stages the BL subroutine took
	Retries    int     // event-B retries consumed this round
	EventA     bool    // true if the round removed fewer than p·n_i/2 vertices
	P          float64 // sampling probability in effect
}

// Result of an SBL run.
type Result struct {
	InIS       []bool      // the maximal independent set
	Rounds     int         // sampling rounds executed (excluding tail)
	TailUsed   TailSolver  // which tail solver ran
	TailSize   int         // undecided vertices handed to the tail solver
	TailRounds int         // rounds/stages the tail solver took (0 for greedy)
	DirectBL   bool        // input dimension ≤ d: BL ran directly (line 26)
	EventBs    int         // total event-B occurrences observed
	Restarts   int         // full restarts under RestartAll
	Stats      []RoundStat // per-round records if Options.CollectStats
	Params     Params      // parameters in effect
}

// ErrEventB is returned under FailHard when a sampled edge exceeds d.
var ErrEventB = errors.New("sbl: event B (sampled edge exceeds dimension cap)")

// ErrRoundLimit is returned when MaxRounds is exceeded.
var ErrRoundLimit = errors.New("sbl: round limit exceeded")

// ErrRetryLimit is returned when event-B retries/restarts are exhausted.
var ErrRetryLimit = errors.New("sbl: retry limit exceeded")

func init() {
	solver.Register(solver.Descriptor{
		Algo:        solver.SBL,
		Name:        "sbl",
		AutoDefault: true,
		Solve: func(req solver.Request) (solver.Outcome, error) {
			tail := TailKUW
			if req.GreedyTail {
				tail = TailGreedy
			}
			r, err := Run(req.H, req.Stream, req.Cost, Options{
				Ctx:      req.Ctx,
				Par:      req.Par,
				Alpha:    req.Alpha,
				Tail:     tail,
				Ws:       req.Ws,
				Observer: req.Observer,
			})
			if err != nil {
				return solver.Outcome{}, err
			}
			return solver.Outcome{InIS: r.InIS, Rounds: r.Rounds}, nil
		},
	})
}

// Run executes Algorithm 1 on h. All randomness comes from s; cost, if
// non-nil, accumulates work-depth charges across SBL and its
// subroutines.
func Run(h *hypergraph.Hypergraph, s *rng.Stream, cost *par.Cost, opts Options) (*Result, error) {
	n := h.N()
	params := opts.Params
	if params.P == 0 {
		alpha := opts.Alpha
		if alpha == 0 {
			alpha = 0.25
		}
		params = DeriveParams(n, h.M(), alpha)
	}
	if opts.RetryLimit == 0 {
		opts.RetryLimit = 64
	}
	if opts.MaxRounds == 0 {
		opts.MaxRounds = int(4*ExpectedRounds(n, params.P)) + 64
	}
	ws := opts.Ws
	if ws == nil {
		ws = solver.NewWorkspace()
	}
	// The workspace round scratch double-buffers the residual
	// hypergraph's CSR arenas across rounds (and across RestartAll
	// attempts), so a round costs no allocations once the buffers are
	// warm. The BL subroutine and the KUW tail run on the sub-workspace
	// — their buffers are distinct from the sampling masks and arenas,
	// which stay live across the subcalls.
	ws.Reset(n, opts.Par)
	blOpts := opts.BL
	if blOpts.MaxStages == 0 {
		blOpts = bl.DefaultOptions()
		blOpts.CollectStats = opts.BL.CollectStats
		blOpts.Ws = opts.BL.Ws
	}
	if blOpts.Ctx == nil {
		blOpts.Ctx = opts.Ctx
	}
	blOpts.Par = opts.Par
	if blOpts.Ws == nil {
		blOpts.Ws = ws.Sub()
	}

	for attempt := 0; ; attempt++ {
		res, err := runOnce(h, s.Child(uint64(attempt)), cost, opts, params, blOpts, ws)
		if err == nil {
			res.Restarts = attempt
			return res, nil
		}
		if opts.OnEventB == RestartAll && errors.Is(err, ErrEventB) && attempt < opts.RetryLimit {
			continue
		}
		return nil, err
	}
}

func runOnce(h *hypergraph.Hypergraph, s *rng.Stream, cost *par.Cost, opts Options, params Params, blOpts bl.Options, ws *solver.Workspace) (*Result, error) {
	n := h.N()
	res := &Result{
		InIS:   make([]bool, n),
		Params: params,
	}

	// Line 3 / 25–27: if the input dimension is already within the cap,
	// run BL directly on the whole hypergraph.
	if h.Dim() <= params.D {
		blRes, err := bl.Run(h, nil, s.Child(1_000_000), cost, blOpts)
		if err != nil {
			return nil, fmt.Errorf("sbl: direct BL: %w", err)
		}
		copy(res.InIS, blRes.InIS)
		res.DirectBL = true
		res.TailRounds = blRes.Stages
		return res, nil
	}

	eng := opts.Par
	scratch := &ws.Scratch
	undecided := ws.Bits(0)
	undecided.SetAll(n)
	par.ChargeStep(cost, n)
	cur := h
	// sampled is kept both packed (for the induce/commit word passes)
	// and as a mask (the BL subroutine's active-set contract).
	sampled := ws.Bits(1)
	sampledMask := ws.Bools(0, n)
	blueBits := ws.Bits(2)
	redBits := ws.Bits(3)
	words := len(undecided)

	lp := &solver.Loop{
		Ctx:       opts.Ctx,
		Cost:      cost,
		MaxRounds: opts.MaxRounds,
		LimitErr:  ErrRoundLimit,
		Unit:      "round",
		Observer:  opts.Observer,
	}
	// |undecided| is carried across rounds: SetAll makes it exactly n
	// here, and the fused discard below maintains it — no per-round
	// Count sweep.
	remaining := n
	for {
		if err := lp.Check(); err != nil {
			return nil, err
		}
		par.ChargeReduce(cost, n)
		// Line 4: while |V| ≥ 1/p².
		if remaining < params.MinVertices {
			break
		}
		if err := lp.Begin(remaining, cur.M(), cur.Dim()); err != nil {
			return nil, err
		}
		round := lp.Rounds()

		st := RoundStat{Round: round, Undecided: remaining, Edges: cur.M(), P: params.P}

		// Lines 6–9: sample V' and induce H'; event B retries.
		roundStream := s.Child(uint64(round))
		var sub *hypergraph.Hypergraph
		var sampledCount int
		try := 0
		for {
			// One RNG stream per try; the per-vertex coin flips draw
			// through BernoulliAt, which derives the per-index child on
			// the stack — no per-vertex stream construction. Only
			// undecided vertices draw (dead words are skipped): the same
			// index-addressed draws for any engine, so the sample is
			// deterministic at any parallelism degree. Each worker owns
			// a disjoint word range of the packed set and the [64·lo,
			// 64·hi) range of the mask — no write overlap.
			tryStream := roundStream.Child(uint64(try))
			eng.ForBlocked(nil, words, func(lo, hi int) {
				for wi := lo; wi < hi; wi++ {
					uw := undecided[wi]
					var sw uint64
					base := wi << 6
					for w := uw; w != 0; w &= w - 1 {
						b := bits.TrailingZeros64(w)
						if tryStream.BernoulliAt(uint64(base+b), params.P) {
							sw |= 1 << uint(b)
						}
					}
					sampled[wi] = sw
					end := base + 64
					if end > n {
						end = n
					}
					for v := base; v < end; v++ {
						sampledMask[v] = sw&(1<<uint(v-base)) != 0
					}
				}
			})
			par.ChargeStep(cost, n)
			sampledCount = sampled.Count()
			par.ChargeReduce(cost, n)
			sub = hypergraph.InduceIntoBits(cur, sampled, scratch)
			par.ChargeStep(cost, cur.M())
			if sub.Dim() <= params.D {
				break
			}
			res.EventBs++
			switch opts.OnEventB {
			case FailHard:
				return nil, fmt.Errorf("%w: dim %d > %d at round %d", ErrEventB, sub.Dim(), params.D, round)
			case RestartAll:
				return nil, fmt.Errorf("%w: dim %d > %d at round %d", ErrEventB, sub.Dim(), params.D, round)
			default: // RetryRound
				try++
				st.Retries++
				if try > opts.RetryLimit {
					return nil, fmt.Errorf("%w: event B persisted %d retries at round %d", ErrRetryLimit, try, round)
				}
			}
		}
		st.Sampled = sampledCount
		st.SampledDim = sub.Dim()
		st.SampledM = sub.M()

		// Line 11: run BL on H'. Every sampled vertex comes back colored
		// blue (in I') or red.
		blRes, err := bl.Run(sub, sampledMask, roundStream.Child(1_000_003), cost, blOpts)
		if err != nil {
			return nil, fmt.Errorf("sbl: BL at round %d: %w", round, err)
		}
		st.BLStages = blRes.Stages

		// Line 12: commit. I ∪= I'; V \= V'. The packed blue/red sets
		// feed the fused round transform below.
		blueBits.Reset()
		redBits.Reset()
		blue, red := 0, 0
		sampled.ForEach(func(v int) {
			if blRes.InIS[v] {
				res.InIS[v] = true
				blueBits.Add(v)
				blue++
			} else {
				redBits.Add(v)
				red++
			}
		})
		// Discard the sampled vertices and pick up the next round's
		// |undecided| from the same fused sweep.
		remaining = bitset.AndNotInto(undecided, undecided, sampled)
		par.ChargeStep(cost, n)
		st.Blue = blue
		st.Red = red
		st.EventA = float64(sampledCount) < params.P*float64(remaining)/2

		// Lines 13–20, fused: drop edges meeting a red vertex and shrink
		// the survivors by I' in one pass into the scratch's other
		// buffer (NextRoundBits is edge-set-identical to
		// DiscardTouching → Shrink; property-tested).
		next, emptied := hypergraph.NextRoundBits(cur, redBits, blueBits, scratch)
		if emptied > 0 {
			return nil, fmt.Errorf("sbl: %d edges became fully blue at round %d (independence broken)", emptied, round)
		}
		par.ChargeStep(cost, cur.M())
		cur = next

		if opts.VerifyEachRound {
			if !hypergraph.IsIndependent(h, res.InIS) {
				return nil, fmt.Errorf("sbl: invariant I3 violated at round %d", round)
			}
		}
		if opts.CollectStats {
			res.Stats = append(res.Stats, st)
		}
		lp.End(blue + red)
	}
	res.Rounds = lp.Rounds()

	// Lines 23–24: tail solver on the residual instance. remaining is
	// |undecided|, maintained by the fused discard.
	res.TailSize = remaining
	par.ChargeReduce(cost, n)
	res.TailUsed = opts.Tail
	undecidedMask := sampledMask // recycle: the sampling buffer is dead now
	undecided.WriteBools(undecidedMask)
	switch opts.Tail {
	case TailGreedy:
		g := greedy.RunIn(cur, undecidedMask, ws.Sub())
		for v := 0; v < n; v++ {
			if g.InIS[v] {
				res.InIS[v] = true
			}
		}
		par.ChargeAux(cost, int64(res.TailSize), int64(res.TailSize))
	default:
		k, err := kuw.Run(cur, undecidedMask, s.Child(2_000_003), cost, kuw.Options{Ctx: opts.Ctx, Par: eng, Ws: ws.Sub()})
		if err != nil {
			return nil, fmt.Errorf("sbl: KUW tail: %w", err)
		}
		for v := 0; v < n; v++ {
			if k.InIS[v] {
				res.InIS[v] = true
			}
		}
		res.TailRounds = k.Rounds
	}
	return res, nil
}
