// Package core implements the paper's primary contribution: the SBL
// ("sampling Beame–Luby") algorithm, Algorithm 1. SBL finds a maximal
// independent set of a *general* hypergraph — no dimension restriction —
// in n^{o(1)} parallel time, provided the edge count satisfies
// m ≤ n^{log(2)n / (8·(log(3)n)²)} (Theorem 1).
//
// The idea: sample each undecided vertex with probability p = n^{-α}.
// With high probability every edge fully inside the sample has at most
// d = log(2)n/(4·log(3)n) vertices, so the induced sub-hypergraph H' has
// small dimension and the Beame–Luby subroutine (package bl, Theorem 2)
// colors its vertices blue (MIS of H') / red in polylog time. The
// coloring is committed: edges touching a red vertex can never become
// fully blue and are discarded; remaining edges shrink by the blue
// vertices. The loop repeats on the residual hypergraph until fewer
// than 1/p² vertices remain, at which point the Karp–Upfal–Wigderson
// algorithm (package kuw) — or the linear-time sequential solver —
// finishes the job.
package core

import (
	"math"

	"repro/internal/mathx"
)

// Params are the three quantities Algorithm 1 is parameterized by.
type Params struct {
	// P is the per-round vertex sampling probability (paper: n^{-α},
	// α = 1/log(3)n).
	P float64
	// D is the dimension cap for the sampled sub-hypergraph; a sampled
	// edge exceeding D is failure event B (paper: log(2)n/(4·log(3)n)).
	D int
	// MinVertices is the tail threshold: once fewer undecided vertices
	// remain, the tail solver runs (paper: 1/p²).
	MinVertices int
}

// PaperParams returns the exact parameterization of Theorem 1:
// α = 1/log(3)n, p = n^{-α}, d = log(2)n/(4·log(3)n), threshold 1/p².
//
// Note the asymptotic nature of these choices: for every n reachable in
// experiments, α ≈ ½ and therefore 1/p² ≈ n — the sampling loop is
// skipped and SBL degenerates to its tail solver. That is the correct
// reading of the theorem (its advantage over KUW appears only at
// astronomic n); for measurable sampling behaviour use DeriveParams
// with a smaller α, a freedom the paper grants explicitly ("the
// parameters … have been chosen to keep the computation in the analysis
// simple and there is some flexibility in their choice").
func PaperParams(n int) Params {
	fn := float64(n)
	l3 := mathx.LogLogLog2(fn)
	alpha := 1.0 / l3
	p := math.Pow(fn, -alpha)
	d := int(mathx.LogLog2(fn) / (4 * l3))
	if d < 2 {
		d = 2
	}
	return Params{P: p, D: d, MinVertices: minVerticesFor(p)}
}

// DeriveParams returns parameters for a caller-chosen α, deriving the
// dimension cap from the event-B calculation in the paper's analysis:
// with r = 2·log(n)/p rounds, the probability that any edge of size
// d+1 is ever fully sampled is at most r·m·p^{d+1}; requiring this to be
// ≤ 1/n gives
//
//	d = log(r·m·n)/log(1/p) − 1.
//
// The returned D is that quantity (rounded up, floored at 2), so event B
// keeps probability ≤ 1/n at the experimental scale too.
func DeriveParams(n, m int, alpha float64) Params {
	fn := float64(n)
	if alpha <= 0 || alpha >= 1 {
		alpha = 0.25
	}
	p := math.Pow(fn, -alpha)
	r := 2 * mathx.Log2(fn) / p
	fm := float64(m)
	if fm < 1 {
		fm = 1
	}
	d := int(math.Ceil(math.Log2(r*fm*fn)/math.Log2(1/p))) - 1
	if d < 2 {
		d = 2
	}
	return Params{P: p, D: d, MinVertices: minVerticesFor(p)}
}

// minVerticesFor returns ceil(1/p²) capped to stay meaningful.
func minVerticesFor(p float64) int {
	if p <= 0 {
		return 1
	}
	mv := int(math.Ceil(1 / (p * p)))
	if mv < 1 {
		mv = 1
	}
	return mv
}

// EdgeBudget returns the paper's bound on the admissible number of
// edges, n^β with β = log(2)n/(8·(log(3)n)²) — the hypothesis of
// Theorem 1. Instances within this budget are in SBL's claimed regime.
func EdgeBudget(n int) float64 {
	fn := float64(n)
	l3 := mathx.LogLogLog2(fn)
	beta := mathx.LogLog2(fn) / (8 * l3 * l3)
	return math.Pow(fn, beta)
}

// ExpectedRounds returns the analysis' round bound r = 2·log(n)/p for
// the given parameters (claim (1) in Section 2.2).
func ExpectedRounds(n int, p float64) float64 {
	return 2 * mathx.Log2(float64(n)) / p
}
