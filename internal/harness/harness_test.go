package harness

import (
	"bytes"
	"strings"
	"testing"
)

func TestTableRender(t *testing.T) {
	tab := &Table{
		ID: "t1", Title: "demo", Note: "a note",
		Columns: []string{"n", "value"},
	}
	tab.AddRow("1024", "3.5")
	tab.AddRow("2048", "4.25")
	var buf bytes.Buffer
	tab.Render(&buf)
	out := buf.String()
	for _, want := range []string{"T1", "demo", "a note", "1024", "4.25"} {
		if !strings.Contains(out, want) {
			t.Fatalf("rendered table missing %q:\n%s", want, out)
		}
	}
}

func TestTableRenderCSV(t *testing.T) {
	tab := &Table{ID: "x", Columns: []string{"a", "b"}}
	tab.AddRow("1", "2")
	var buf bytes.Buffer
	tab.RenderCSV(&buf)
	if got := buf.String(); got != "a,b\n1,2\n" {
		t.Fatalf("csv = %q", got)
	}
}

func TestRegistryOrdering(t *testing.T) {
	// Register in scrambled order with unique ids; All() must sort
	// t-series numerically before f-series.
	for _, id := range []string{"t91", "f92", "t90", "f91"} {
		Register(Experiment{ID: id, Run: func(Config) []*Table { return nil }})
	}
	var seq []string
	for _, e := range All() {
		switch e.ID {
		case "t90", "t91", "f91", "f92":
			seq = append(seq, e.ID)
		}
	}
	want := []string{"t90", "t91", "f91", "f92"}
	if len(seq) != 4 {
		t.Fatalf("got %v", seq)
	}
	for i := range want {
		if seq[i] != want[i] {
			t.Fatalf("order %v, want %v", seq, want)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	Register(Experiment{ID: "t99", Run: func(Config) []*Table { return nil }})
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	Register(Experiment{ID: "t99", Run: func(Config) []*Table { return nil }})
}

func TestGetCaseInsensitive(t *testing.T) {
	Register(Experiment{ID: "t98", Title: "x", Run: func(Config) []*Table { return nil }})
	if _, ok := Get("T98"); !ok {
		t.Fatal("Get should be case-insensitive")
	}
	if _, ok := Get("nope"); ok {
		t.Fatal("unknown id found")
	}
}

func TestConfigLogf(t *testing.T) {
	var buf bytes.Buffer
	cfg := Config{Log: &buf}
	cfg.Logf("hello %d", 42)
	if !strings.Contains(buf.String(), "hello 42") {
		t.Fatal("Logf did not write")
	}
	// nil log must not panic.
	Config{}.Logf("discarded")
}
