// Package harness is the experiment framework: a registry of named
// experiments (one per table/figure in DESIGN.md §5), a sweep
// configuration, and plain-text / CSV table rendering. The cmd/experiments
// binary and the root bench suite both drive experiments through this
// package, so the rows printed by `go test -bench` and by
// `experiments <id>` are produced by the same code.
package harness

import (
	"fmt"
	"io"
	"sort"
	"strings"
	"sync"
)

// Config controls an experiment run.
type Config struct {
	// Seed makes the whole experiment deterministic.
	Seed uint64
	// Trials is the number of repetitions per parameter point (each
	// experiment documents its own default when 0).
	Trials int
	// Quick shrinks sweeps for smoke runs (bench mode, CI).
	Quick bool
	// Log receives progress lines; nil discards them.
	Log io.Writer
}

// Logf writes a progress line if a log sink is configured.
func (c Config) Logf(format string, args ...any) {
	if c.Log != nil {
		fmt.Fprintf(c.Log, format+"\n", args...)
	}
}

// Table is a rendered experiment result.
type Table struct {
	ID      string // experiment id, e.g. "t1"
	Title   string
	Note    string // provenance: what paper claim this regenerates
	Columns []string
	Rows    [][]string
}

// AddRow appends a row; cell counts should match Columns.
func (t *Table) AddRow(cells ...string) {
	t.Rows = append(t.Rows, cells)
}

// Render writes an aligned plain-text table.
func (t *Table) Render(w io.Writer) {
	fmt.Fprintf(w, "== %s — %s\n", strings.ToUpper(t.ID), t.Title)
	if t.Note != "" {
		fmt.Fprintf(w, "   %s\n", t.Note)
	}
	widths := make([]int, len(t.Columns))
	for i, c := range t.Columns {
		widths[i] = len(c)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		parts := make([]string, len(cells))
		for i, cell := range cells {
			w := 0
			if i < len(widths) {
				w = widths[i]
			}
			parts[i] = fmt.Sprintf("%-*s", w, cell)
		}
		fmt.Fprintln(w, "  "+strings.Join(parts, "  "))
	}
	line(t.Columns)
	sep := make([]string, len(t.Columns))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
	fmt.Fprintln(w)
}

// RenderCSV writes the table as CSV (no quoting needed: cells are
// numeric or simple identifiers by construction).
func (t *Table) RenderCSV(w io.Writer) {
	fmt.Fprintln(w, strings.Join(t.Columns, ","))
	for _, row := range t.Rows {
		fmt.Fprintln(w, strings.Join(row, ","))
	}
}

// Experiment is a registered table/figure generator.
type Experiment struct {
	ID    string // "t1" … "t12", "f1", "f2"
	Title string
	Claim string // the paper claim being regenerated
	Run   func(cfg Config) []*Table
}

var (
	mu       sync.Mutex
	registry = map[string]Experiment{}
)

// Register adds an experiment; duplicate IDs panic (programmer error).
func Register(e Experiment) {
	mu.Lock()
	defer mu.Unlock()
	if _, dup := registry[e.ID]; dup {
		panic("harness: duplicate experiment " + e.ID)
	}
	registry[e.ID] = e
}

// Get returns the experiment with the given id.
func Get(id string) (Experiment, bool) {
	mu.Lock()
	defer mu.Unlock()
	e, ok := registry[strings.ToLower(id)]
	return e, ok
}

// All returns every experiment sorted by ID (t-series then f-series,
// numerically).
func All() []Experiment {
	mu.Lock()
	defer mu.Unlock()
	out := make([]Experiment, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return idLess(out[i].ID, out[j].ID) })
	return out
}

// idLess orders experiment ids like t1 < t2 < … < t10 < f1 < f2.
func idLess(a, b string) bool {
	ka, na := splitID(a)
	kb, nb := splitID(b)
	if ka != kb {
		return ka < kb // "f" < "t": keep t-series after? We want t first.
	}
	return na < nb
}

func splitID(id string) (kind string, num int) {
	i := 0
	for i < len(id) && (id[i] < '0' || id[i] > '9') {
		i++
	}
	kind = id[:i]
	fmt.Sscanf(id[i:], "%d", &num)
	// Order t-series before f-series by mapping: t -> "a", f -> "b".
	switch kind {
	case "t":
		kind = "a"
	case "f":
		kind = "b"
	}
	return kind, num
}
