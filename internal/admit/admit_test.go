package admit

import (
	"testing"
	"time"
)

func TestParsePriority(t *testing.T) {
	cases := []struct {
		in   string
		def  Priority
		want Priority
		err  bool
	}{
		{"", Interactive, Interactive, false},
		{"", Batch, Batch, false},
		{"interactive", Background, Interactive, false},
		{"batch", Interactive, Batch, false},
		{"background", Interactive, Background, false},
		{"urgent", Interactive, Interactive, true},
	}
	for _, c := range cases {
		got, err := Parse(c.in, c.def)
		if (err != nil) != c.err {
			t.Errorf("Parse(%q): err = %v, want err=%t", c.in, err, c.err)
		}
		if err == nil && got != c.want {
			t.Errorf("Parse(%q) = %v, want %v", c.in, got, c.want)
		}
	}
}

// TestOrderWeights: over one full schedule cycle each class leads
// exactly its weight's share of dequeues, and every order ranks all
// three classes (preference, not a gate).
func TestOrderWeights(t *testing.T) {
	leads := map[Priority]int{}
	for tick := uint64(0); tick < weightTotal; tick++ {
		order := Order(tick)
		leads[order[0]]++
		seen := map[Priority]bool{}
		for _, p := range order {
			seen[p] = true
		}
		if len(seen) != NumPriorities {
			t.Fatalf("Order(%d) = %v does not rank every class", tick, order)
		}
	}
	if leads[Interactive] != weightInteractive || leads[Batch] != weightBatch ||
		leads[Background] != weightTotal-weightInteractive-weightBatch {
		t.Fatalf("lead shares %v, want %d/%d/%d", leads, weightInteractive, weightBatch,
			weightTotal-weightInteractive-weightBatch)
	}
	// The schedule repeats: tick and tick+weightTotal agree.
	for tick := uint64(0); tick < weightTotal; tick++ {
		if Order(tick) != Order(tick+weightTotal) {
			t.Fatalf("Order not cyclic at tick %d", tick)
		}
	}
}

func TestQueueWait(t *testing.T) {
	if w := QueueWait(8, 2, 10*time.Millisecond); w != 40*time.Millisecond {
		t.Errorf("QueueWait(8, 2, 10ms) = %v, want 40ms", w)
	}
	if w := QueueWait(5, 0, 10*time.Millisecond); w != 50*time.Millisecond {
		t.Errorf("QueueWait clamps workers to 1: got %v, want 50ms", w)
	}
	if w := QueueWait(100, 4, 0); w != 0 {
		t.Errorf("QueueWait with no service estimate = %v, want 0 (stay open)", w)
	}
	if w := QueueWait(0, 4, time.Second); w != 0 {
		t.Errorf("QueueWait with empty queue = %v, want 0", w)
	}
}

func TestEstimatorFallbackAndConvergence(t *testing.T) {
	e := NewEstimator()
	if d := e.Estimate("sbl"); d != 0 {
		t.Fatalf("empty estimator guessed %v, want 0", d)
	}
	e.Observe("sbl", 10*time.Millisecond)
	if d := e.Estimate("sbl"); d != 10*time.Millisecond {
		t.Fatalf("first observation should seed the EWMA exactly: got %v", d)
	}
	// Unobserved keys fall back to the global average, not zero.
	if d := e.Estimate("luby"); d == 0 {
		t.Fatal("unobserved key got no global fallback")
	}
	// Repeated larger observations converge toward the new level.
	for i := 0; i < 50; i++ {
		e.Observe("sbl", 40*time.Millisecond)
	}
	got := e.Estimate("sbl")
	if got < 35*time.Millisecond || got > 40*time.Millisecond {
		t.Fatalf("EWMA did not converge: %v, want ≈40ms", got)
	}
	// A nil estimator is inert.
	var nilE *Estimator
	nilE.Observe("x", time.Second)
	if d := nilE.Estimate("x"); d != 0 {
		t.Fatalf("nil estimator returned %v", d)
	}
}

func TestRateLimiterBurstAndRefill(t *testing.T) {
	rl := NewRateLimiter(10, 2, 8) // 10/s, burst 2
	clock := time.Unix(1000, 0)
	rl.now = func() time.Time { return clock }

	for i := 0; i < 2; i++ {
		if ok, _ := rl.Allow("a"); !ok {
			t.Fatalf("burst request %d denied", i)
		}
	}
	ok, retry := rl.Allow("a")
	if ok {
		t.Fatal("request past burst admitted")
	}
	if retry <= 0 || retry > 200*time.Millisecond {
		t.Fatalf("retry-after %v, want (0, 100ms]+slack at 10/s", retry)
	}
	// Another client is unaffected.
	if ok, _ := rl.Allow("b"); !ok {
		t.Fatal("independent client denied")
	}
	// 100ms refills one token at 10/s.
	clock = clock.Add(100 * time.Millisecond)
	if ok, _ := rl.Allow("a"); !ok {
		t.Fatal("refilled token denied")
	}
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("second token admitted after single refill")
	}
}

// TestRateLimiterLRUBound: the bucket set never exceeds maxClients;
// the least recently used client is evicted and returns with a fresh
// burst (the documented, bounded-memory trade-off).
func TestRateLimiterLRUBound(t *testing.T) {
	rl := NewRateLimiter(1, 1, 2)
	clock := time.Unix(1000, 0)
	rl.now = func() time.Time { return clock }

	rl.Allow("a") // a's bucket now empty (burst 1)
	rl.Allow("b")
	if ok, _ := rl.Allow("a"); ok {
		t.Fatal("a should be out of tokens")
	}
	rl.Allow("c") // evicts b (a was refreshed by the denied Allow)
	if n := rl.Clients(); n != 2 {
		t.Fatalf("tracked clients = %d, want 2", n)
	}
	if ok, _ := rl.Allow("b"); !ok {
		t.Fatal("evicted client should restart with a full burst")
	}
}

func TestRateLimiterDisabled(t *testing.T) {
	if rl := NewRateLimiter(0, 5, 10); rl != nil {
		t.Fatal("rate 0 should return the nil (always-allow) limiter")
	}
	var rl *RateLimiter
	if ok, retry := rl.Allow("anyone"); !ok || retry != 0 {
		t.Fatal("nil limiter must admit everything")
	}
	if rl.Clients() != 0 {
		t.Fatal("nil limiter tracks no clients")
	}
}
