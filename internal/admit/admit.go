// Package admit is the service's front-door QoS policy: priority
// classes with a weighted dequeue order, a deadline-aware queue-wait
// estimator fed by observed per-algorithm service times, and a
// per-client token-bucket rate limiter with a bounded LRU of buckets.
// The package holds only policy — pure decisions over counts and
// durations — so every piece is unit-testable without a running
// scheduler; internal/service wires the decisions into its queues and
// HTTP handlers.
package admit

import (
	"container/list"
	"fmt"
	"math"
	"sync"
	"time"
)

// Priority is a request's service class. Lower values are served
// preferentially by the weighted dequeue: interactive traffic is the
// latency-sensitive default for single solves, batch is bulk work that
// tolerates queueing (the /v1/batch and /v1/jobs default), background
// is best-effort filler that must never displace the other two.
type Priority uint8

const (
	Interactive Priority = iota
	Batch
	Background
	// NumPriorities sizes per-priority arrays (queues, counters).
	NumPriorities = 3
)

func (p Priority) String() string {
	switch p {
	case Interactive:
		return "interactive"
	case Batch:
		return "batch"
	case Background:
		return "background"
	}
	return fmt.Sprintf("priority(%d)", uint8(p))
}

// Names lists the class names in priority order, for building labeled
// metric families deterministically.
func Names() [NumPriorities]string {
	return [NumPriorities]string{Interactive.String(), Batch.String(), Background.String()}
}

// Parse resolves a wire value ("interactive", "batch", "background")
// to its Priority; the empty string selects def. Unknown values are
// the caller's 400.
func Parse(s string, def Priority) (Priority, error) {
	switch s {
	case "":
		return def, nil
	case "interactive":
		return Interactive, nil
	case "batch":
		return Batch, nil
	case "background":
		return Background, nil
	}
	return def, fmt.Errorf("bad priority %q (want interactive, batch or background)", s)
}

// Dequeue weighting: of every weightTotal dequeues, the first
// weightInteractive prefer interactive, the next weightBatch prefer
// batch, and the last prefer background. The preference is a full
// order, not a hard gate — a preferred-but-empty class falls through
// to the next — so the weights bound *contention* shares: under a
// batch flood interactive still gets ≥ 6/10 of worker pickups, and
// background is guaranteed 1/10 rather than starving behind the flood.
const (
	weightInteractive = 6
	weightBatch       = 3
	weightTotal       = 10
)

// Order returns the dequeue preference order for the tick'th dequeue.
// Ticks cycle through a fixed weighted round-robin schedule, so the
// order is deterministic given the tick counter — tests can pin it.
func Order(tick uint64) [NumPriorities]Priority {
	switch slot := tick % weightTotal; {
	case slot < weightInteractive:
		return [NumPriorities]Priority{Interactive, Batch, Background}
	case slot < weightInteractive+weightBatch:
		return [NumPriorities]Priority{Batch, Interactive, Background}
	default:
		return [NumPriorities]Priority{Background, Interactive, Batch}
	}
}

// QueueWait estimates how long a job entering a queue with `ahead`
// jobs before it will wait for a worker, given `workers` draining the
// queue at one job per svc each. Zero svc (no observations yet) yields
// zero — the estimator refuses to guess without data, so admission
// stays open until real service times exist.
func QueueWait(ahead, workers int, svc time.Duration) time.Duration {
	if svc <= 0 || ahead <= 0 {
		return 0
	}
	if workers < 1 {
		workers = 1
	}
	return time.Duration(float64(svc) * float64(ahead) / float64(workers))
}

// Estimator tracks recent service times per key (the resolved solver
// name) as exponentially weighted moving averages, plus a global
// fallback for keys not yet observed. It answers "how long does one of
// these solves take right now" for the admission controller's queue-
// wait arithmetic.
type Estimator struct {
	mu     sync.Mutex
	alpha  float64
	perKey map[string]time.Duration
	global time.Duration
}

// NewEstimator returns an estimator smoothing at alpha = 0.2: each new
// observation contributes a fifth of the estimate, so a burst of slow
// solves moves the estimate within a few requests without a single
// outlier whipsawing it.
func NewEstimator() *Estimator {
	return &Estimator{alpha: 0.2, perKey: make(map[string]time.Duration)}
}

// Observe folds one completed solve's service time into the key's EWMA
// and the global fallback.
func (e *Estimator) Observe(key string, d time.Duration) {
	if e == nil || d < 0 {
		return
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	e.global = ewma(e.global, d, e.alpha)
	e.perKey[key] = ewma(e.perKey[key], d, e.alpha)
}

// Estimate reports the key's current EWMA service time, falling back
// to the global average for unobserved keys and zero when nothing has
// been observed at all (see QueueWait's zero-svc contract).
func (e *Estimator) Estimate(key string) time.Duration {
	if e == nil {
		return 0
	}
	e.mu.Lock()
	defer e.mu.Unlock()
	if d, ok := e.perKey[key]; ok {
		return d
	}
	return e.global
}

func ewma(cur, obs time.Duration, alpha float64) time.Duration {
	if cur == 0 {
		return obs
	}
	return time.Duration((1-alpha)*float64(cur) + alpha*float64(obs))
}

// RateLimiter is a per-client token-bucket limiter: each client key
// holds a bucket refilling at rate tokens/second up to burst, and a
// request is admitted iff its client's bucket has a whole token. The
// client set is a bounded LRU — an attacker cycling fresh keys evicts
// other attackers' buckets, not the service's memory — so the limiter
// is itself overload-safe.
type RateLimiter struct {
	mu         sync.Mutex
	rate       float64 // tokens per second
	burst      float64
	maxClients int
	ll         *list.List // front = most recently used
	clients    map[string]*list.Element
	now        func() time.Time // injectable clock for tests
}

type bucket struct {
	key    string
	tokens float64
	last   time.Time
}

// NewRateLimiter returns a limiter granting rate requests/second with
// the given burst per client, tracking at most maxClients buckets
// (older buckets are evicted LRU; an evicted client restarts with a
// full burst). rate ≤ 0 returns nil — and a nil *RateLimiter admits
// everything, so "disabled" needs no branching at call sites.
func NewRateLimiter(rate, burst float64, maxClients int) *RateLimiter {
	if rate <= 0 {
		return nil
	}
	if burst < 1 {
		burst = 1
	}
	if maxClients < 1 {
		maxClients = 1
	}
	return &RateLimiter{
		rate:       rate,
		burst:      burst,
		maxClients: maxClients,
		ll:         list.New(),
		clients:    make(map[string]*list.Element),
		now:        time.Now,
	}
}

// Allow charges one token to key's bucket. When the bucket is empty it
// reports false plus how long until the next token accrues — the
// honest Retry-After for a 429.
func (rl *RateLimiter) Allow(key string) (ok bool, retryAfter time.Duration) {
	if rl == nil {
		return true, 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	now := rl.now()
	var b *bucket
	if el, found := rl.clients[key]; found {
		rl.ll.MoveToFront(el)
		b = el.Value.(*bucket)
		b.tokens = math.Min(rl.burst, b.tokens+now.Sub(b.last).Seconds()*rl.rate)
		b.last = now
	} else {
		if rl.ll.Len() >= rl.maxClients {
			oldest := rl.ll.Back()
			rl.ll.Remove(oldest)
			delete(rl.clients, oldest.Value.(*bucket).key)
		}
		b = &bucket{key: key, tokens: rl.burst, last: now}
		rl.clients[key] = rl.ll.PushFront(b)
	}
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	return false, time.Duration((1 - b.tokens) / rl.rate * float64(time.Second))
}

// Clients reports the tracked bucket count (for stats/gauges).
func (rl *RateLimiter) Clients() int {
	if rl == nil {
		return 0
	}
	rl.mu.Lock()
	defer rl.mu.Unlock()
	return rl.ll.Len()
}
