// Package mathx collects the small numeric helpers shared by the
// algorithm parameterizations: iterated binary logarithms (the paper's
// log n, log(2) n = log log n, log(3) n = log log log n), guarded for the
// finite n of experiments, and factorials for the (d+4)! stage bounds.
//
// The paper's asymptotic parameters involve quantities like
// log(3) n that are ≤ 0 for small n; every helper clamps so that the
// derived probabilities and dimensions stay in their sensible ranges at
// experimental scales. Logarithms are base 2 throughout, matching the
// convention that makes log(2) 2^16 = 4 exact.
package mathx

import (
	"math"
	"math/bits"
)

// ILog2 returns floor(log₂ n) for n ≥ 1 and 0 for n ≤ 1 — the integer
// logarithm the round-budget and PRAM-depth charges use (a permutation
// of k keys costs ~log₂ k depth).
func ILog2(n int) int {
	if n <= 1 {
		return 0
	}
	return bits.Len(uint(n)) - 1
}

// BitLen returns the number of bits needed to represent n (0 for
// n ≤ 0): BitLen(n) = ILog2(n)+1 for n ≥ 1. Round-count defaults of
// the form c·log₂ n use it so that BitLen(1) = 1 keeps tiny instances
// from degenerating to a zero budget.
func BitLen(n int) int {
	if n <= 0 {
		return 0
	}
	return bits.Len(uint(n))
}

// Log2 returns log₂(x), clamped to a minimum argument of 1 (so the
// result is never negative or NaN for the sizes used here).
func Log2(x float64) float64 {
	if x < 1 {
		x = 1
	}
	return math.Log2(x)
}

// Log2Clamped returns max(lo, log₂ x).
func Log2Clamped(x, lo float64) float64 {
	l := Log2(x)
	if l < lo {
		return lo
	}
	return l
}

// LogLog2 returns log₂ log₂ x, with the inner log clamped to 2 so the
// result is at least 1. (For n ≤ 4 the asymptotic formulas are
// meaningless; the clamp keeps finite-n parameterizations monotone.)
func LogLog2(x float64) float64 {
	return Log2Clamped(Log2Clamped(x, 2), 1)
}

// LogLogLog2 returns log₂ log₂ log₂ x with the same inner clamping, so
// the result is at least 1.
func LogLogLog2(x float64) float64 {
	return Log2Clamped(LogLog2(x), 1)
}

// Factorial returns n! as a float64 (exact up to 22!, then best-effort;
// +Inf beyond float64 range). Used only for the loose (d+4)! exponent
// bounds, where overflow to +Inf is an acceptable answer ("bound is
// astronomically loose").
func Factorial(n int) float64 {
	if n < 0 {
		return math.NaN()
	}
	f := 1.0
	for i := 2; i <= n; i++ {
		f *= float64(i)
		if math.IsInf(f, 1) {
			return f
		}
	}
	return f
}

// PowInt returns x^k for integer k ≥ 0 by binary exponentiation.
func PowInt(x float64, k int) float64 {
	if k < 0 {
		return 1 / PowInt(x, -k)
	}
	r := 1.0
	for k > 0 {
		if k&1 == 1 {
			r *= x
		}
		x *= x
		k >>= 1
	}
	return r
}

// Clamp bounds v into [lo, hi].
func Clamp(v, lo, hi float64) float64 {
	if v < lo {
		return lo
	}
	if v > hi {
		return hi
	}
	return v
}

// BinomialCoeff returns C(n, k) as float64 (may overflow to +Inf).
func BinomialCoeff(n, k int) float64 {
	if k < 0 || k > n {
		return 0
	}
	if k > n-k {
		k = n - k
	}
	r := 1.0
	for i := 0; i < k; i++ {
		r *= float64(n-i) / float64(i+1)
	}
	return r
}
