package mathx

import (
	"math"
	"testing"
)

func TestILog2(t *testing.T) {
	cases := []struct{ n, want int }{
		{-5, 0}, {0, 0}, {1, 0}, {2, 1}, {3, 1}, {4, 2}, {7, 2}, {8, 3},
		{1023, 9}, {1024, 10}, {1025, 10}, {1 << 30, 30}, {1<<30 + 1, 30},
	}
	for _, c := range cases {
		if got := ILog2(c.n); got != c.want {
			t.Errorf("ILog2(%d) = %d, want %d", c.n, got, c.want)
		}
	}
}

func TestBitLen(t *testing.T) {
	cases := []struct{ n, want int }{
		{-1, 0}, {0, 0}, {1, 1}, {2, 2}, {3, 2}, {4, 3}, {7, 3}, {8, 4},
		{255, 8}, {256, 9}, {1 << 20, 21},
	}
	for _, c := range cases {
		if got := BitLen(c.n); got != c.want {
			t.Errorf("BitLen(%d) = %d, want %d", c.n, got, c.want)
		}
	}
	// Invariant the round budgets rely on: BitLen(n) = ILog2(n)+1 for n ≥ 1.
	for n := 1; n < 10000; n++ {
		if BitLen(n) != ILog2(n)+1 {
			t.Fatalf("BitLen(%d) != ILog2(%d)+1", n, n)
		}
	}
}

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatalf("Log2(8) = %v", Log2(8))
	}
	if Log2(0.5) != 0 {
		t.Fatal("Log2 below 1 must clamp to 0")
	}
	if Log2(0) != 0 {
		t.Fatal("Log2(0) must clamp")
	}
}

func TestLog2Clamped(t *testing.T) {
	if Log2Clamped(2, 5) != 5 {
		t.Fatal("clamp not applied")
	}
	if Log2Clamped(1024, 5) != 10 {
		t.Fatal("clamp applied when not needed")
	}
}

func TestIteratedLogs(t *testing.T) {
	// n = 2^16: log = 16, loglog = 4, logloglog = 2.
	n := float64(1 << 16)
	if LogLog2(n) != 4 {
		t.Fatalf("LogLog2 = %v", LogLog2(n))
	}
	if LogLogLog2(n) != 2 {
		t.Fatalf("LogLogLog2 = %v", LogLogLog2(n))
	}
	// Tiny n clamps to ≥ 1.
	if LogLog2(2) < 1 || LogLogLog2(2) < 1 {
		t.Fatal("iterated logs must clamp to ≥ 1")
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Fatalf("%d! = %v", n, got)
		}
	}
	if !math.IsInf(Factorial(200), 1) {
		t.Fatal("200! should overflow to +Inf")
	}
	if !math.IsNaN(Factorial(-1)) {
		t.Fatal("(-1)! should be NaN")
	}
}

func TestPowInt(t *testing.T) {
	if PowInt(2, 10) != 1024 {
		t.Fatalf("2^10 = %v", PowInt(2, 10))
	}
	if PowInt(3, 0) != 1 {
		t.Fatal("x^0 != 1")
	}
	if got := PowInt(2, -2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("2^-2 = %v", got)
	}
	if got := PowInt(0.5, 3); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("0.5^3 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {4, 5, 0}, {4, -1, 0}}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
