package mathx

import (
	"math"
	"testing"
)

func TestLog2(t *testing.T) {
	if Log2(8) != 3 {
		t.Fatalf("Log2(8) = %v", Log2(8))
	}
	if Log2(0.5) != 0 {
		t.Fatal("Log2 below 1 must clamp to 0")
	}
	if Log2(0) != 0 {
		t.Fatal("Log2(0) must clamp")
	}
}

func TestLog2Clamped(t *testing.T) {
	if Log2Clamped(2, 5) != 5 {
		t.Fatal("clamp not applied")
	}
	if Log2Clamped(1024, 5) != 10 {
		t.Fatal("clamp applied when not needed")
	}
}

func TestIteratedLogs(t *testing.T) {
	// n = 2^16: log = 16, loglog = 4, logloglog = 2.
	n := float64(1 << 16)
	if LogLog2(n) != 4 {
		t.Fatalf("LogLog2 = %v", LogLog2(n))
	}
	if LogLogLog2(n) != 2 {
		t.Fatalf("LogLogLog2 = %v", LogLogLog2(n))
	}
	// Tiny n clamps to ≥ 1.
	if LogLog2(2) < 1 || LogLogLog2(2) < 1 {
		t.Fatal("iterated logs must clamp to ≥ 1")
	}
}

func TestFactorial(t *testing.T) {
	cases := map[int]float64{0: 1, 1: 1, 5: 120, 10: 3628800}
	for n, want := range cases {
		if got := Factorial(n); got != want {
			t.Fatalf("%d! = %v", n, got)
		}
	}
	if !math.IsInf(Factorial(200), 1) {
		t.Fatal("200! should overflow to +Inf")
	}
	if !math.IsNaN(Factorial(-1)) {
		t.Fatal("(-1)! should be NaN")
	}
}

func TestPowInt(t *testing.T) {
	if PowInt(2, 10) != 1024 {
		t.Fatalf("2^10 = %v", PowInt(2, 10))
	}
	if PowInt(3, 0) != 1 {
		t.Fatal("x^0 != 1")
	}
	if got := PowInt(2, -2); math.Abs(got-0.25) > 1e-12 {
		t.Fatalf("2^-2 = %v", got)
	}
	if got := PowInt(0.5, 3); math.Abs(got-0.125) > 1e-12 {
		t.Fatalf("0.5^3 = %v", got)
	}
}

func TestClamp(t *testing.T) {
	if Clamp(5, 0, 1) != 1 || Clamp(-5, 0, 1) != 0 || Clamp(0.5, 0, 1) != 0.5 {
		t.Fatal("Clamp broken")
	}
}

func TestBinomialCoeff(t *testing.T) {
	cases := []struct {
		n, k int
		want float64
	}{{5, 2, 10}, {10, 0, 1}, {10, 10, 1}, {10, 3, 120}, {4, 5, 0}, {4, -1, 0}}
	for _, c := range cases {
		if got := BinomialCoeff(c.n, c.k); math.Abs(got-c.want) > 1e-9 {
			t.Fatalf("C(%d,%d) = %v, want %v", c.n, c.k, got, c.want)
		}
	}
}
