// Package stats provides the summary statistics the experiment harness
// reports: means, deviations, quantiles, histograms, and least-squares
// growth-exponent fits on log-log data (the tool that turns "SBL depth
// grows like n^0.2, KUW like n^0.5" into a number).
package stats

import (
	"fmt"
	"math"
	"sort"
)

// Summary holds the moments and quantiles of a sample.
type Summary struct {
	N             int
	Mean, Std     float64
	Min, Max      float64
	P25, P50, P75 float64
	P95           float64
	Sum           float64
}

// Summarize computes a Summary of xs. An empty sample returns a zero
// Summary with N == 0.
func Summarize(xs []float64) Summary {
	s := Summary{N: len(xs)}
	if s.N == 0 {
		return s
	}
	sorted := append([]float64(nil), xs...)
	sort.Float64s(sorted)
	s.Min, s.Max = sorted[0], sorted[len(sorted)-1]
	for _, x := range sorted {
		s.Sum += x
	}
	s.Mean = s.Sum / float64(s.N)
	varsum := 0.0
	for _, x := range sorted {
		d := x - s.Mean
		varsum += d * d
	}
	if s.N > 1 {
		s.Std = math.Sqrt(varsum / float64(s.N-1))
	}
	s.P25 = Quantile(sorted, 0.25)
	s.P50 = Quantile(sorted, 0.50)
	s.P75 = Quantile(sorted, 0.75)
	s.P95 = Quantile(sorted, 0.95)
	return s
}

// Quantile returns the q-quantile (0 ≤ q ≤ 1) of an ascending-sorted
// sample by linear interpolation.
func Quantile(sorted []float64, q float64) float64 {
	n := len(sorted)
	if n == 0 {
		return math.NaN()
	}
	if n == 1 {
		return sorted[0]
	}
	pos := q * float64(n-1)
	lo := int(math.Floor(pos))
	hi := int(math.Ceil(pos))
	if lo < 0 {
		lo = 0
	}
	if hi >= n {
		hi = n - 1
	}
	frac := pos - float64(lo)
	return sorted[lo]*(1-frac) + sorted[hi]*frac
}

// MeanInt is a convenience mean over integer samples.
func MeanInt(xs []int) float64 {
	if len(xs) == 0 {
		return 0
	}
	sum := 0.0
	for _, x := range xs {
		sum += float64(x)
	}
	return sum / float64(len(xs))
}

// Fit is a least-squares line y = Slope·x + Intercept with goodness R².
type Fit struct {
	Slope, Intercept, R2 float64
}

// LinearFit fits y = a·x + b by ordinary least squares. Needs ≥ 2
// points with distinct x; otherwise returns NaN slope.
func LinearFit(xs, ys []float64) Fit {
	n := float64(len(xs))
	if len(xs) != len(ys) || len(xs) < 2 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range xs {
		sx += xs[i]
		sy += ys[i]
		sxx += xs[i] * xs[i]
		sxy += xs[i] * ys[i]
		syy += ys[i] * ys[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{Slope: math.NaN(), Intercept: math.NaN(), R2: math.NaN()}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// R² = 1 − SSres/SStot.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range xs {
		pred := slope*xs[i] + intercept
		ssRes += (ys[i] - pred) * (ys[i] - pred)
		ssTot += (ys[i] - meanY) * (ys[i] - meanY)
	}
	r2 := 1.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2}
}

// GrowthExponent fits y ≈ c·x^e on positive data by regressing
// log y on log x and returns e with R². This is the number experiments
// compare against the paper's exponents (0.5 for KUW, o(1) for SBL).
func GrowthExponent(xs, ys []float64) Fit {
	lx := make([]float64, 0, len(xs))
	ly := make([]float64, 0, len(ys))
	for i := range xs {
		if xs[i] > 0 && ys[i] > 0 {
			lx = append(lx, math.Log2(xs[i]))
			ly = append(ly, math.Log2(ys[i]))
		}
	}
	return LinearFit(lx, ly)
}

// Histogram counts values into uniform-width buckets over [min, max].
type Histogram struct {
	Min, Max float64
	Counts   []int
	Under    int // values below Min
	Over     int // values above Max
}

// NewHistogram builds a histogram with the given bucket count.
func NewHistogram(min, max float64, buckets int) *Histogram {
	if buckets < 1 {
		buckets = 1
	}
	return &Histogram{Min: min, Max: max, Counts: make([]int, buckets)}
}

// Add records a value.
func (h *Histogram) Add(x float64) {
	switch {
	case x < h.Min:
		h.Under++
	case x > h.Max:
		h.Over++
	default:
		span := h.Max - h.Min
		idx := 0
		if span > 0 {
			idx = int(float64(len(h.Counts)) * (x - h.Min) / span)
			if idx >= len(h.Counts) {
				idx = len(h.Counts) - 1
			}
		}
		h.Counts[idx]++
	}
}

// Total returns the number of recorded values, including out-of-range.
func (h *Histogram) Total() int {
	t := h.Under + h.Over
	for _, c := range h.Counts {
		t += c
	}
	return t
}

// String renders a compact text histogram.
func (h *Histogram) String() string {
	out := ""
	span := h.Max - h.Min
	width := span / float64(len(h.Counts))
	maxC := 1
	for _, c := range h.Counts {
		if c > maxC {
			maxC = c
		}
	}
	for i, c := range h.Counts {
		lo := h.Min + float64(i)*width
		bar := ""
		for j := 0; j < 40*c/maxC; j++ {
			bar += "#"
		}
		out += fmt.Sprintf("%10.3g ┤%-40s %d\n", lo, bar, c)
	}
	return out
}

// BootstrapCI estimates a (lo, hi) percentile confidence interval for
// the mean by resampling. The resampler function must return a uniform
// integer in [0, n) per call (injected so the stats package stays free
// of the rng dependency direction).
func BootstrapCI(xs []float64, rounds int, conf float64, intn func(n int) int) (lo, hi float64) {
	n := len(xs)
	if n == 0 || rounds < 2 {
		return math.NaN(), math.NaN()
	}
	means := make([]float64, rounds)
	for r := 0; r < rounds; r++ {
		sum := 0.0
		for i := 0; i < n; i++ {
			sum += xs[intn(n)]
		}
		means[r] = sum / float64(n)
	}
	sort.Float64s(means)
	alpha := (1 - conf) / 2
	return Quantile(means, alpha), Quantile(means, 1-alpha)
}
