package stats

import (
	"math"
	"testing"

	"repro/internal/rng"
)

func TestSummarizeBasics(t *testing.T) {
	s := Summarize([]float64{1, 2, 3, 4, 5})
	if s.N != 5 || s.Mean != 3 || s.Min != 1 || s.Max != 5 || s.Sum != 15 {
		t.Fatalf("summary %+v", s)
	}
	if math.Abs(s.Std-math.Sqrt(2.5)) > 1e-12 {
		t.Fatalf("std = %v", s.Std)
	}
	if s.P50 != 3 {
		t.Fatalf("median = %v", s.P50)
	}
}

func TestSummarizeEmpty(t *testing.T) {
	s := Summarize(nil)
	if s.N != 0 {
		t.Fatal("empty summary should have N=0")
	}
}

func TestSummarizeSingle(t *testing.T) {
	s := Summarize([]float64{7})
	if s.Mean != 7 || s.Std != 0 || s.P50 != 7 || s.P95 != 7 {
		t.Fatalf("%+v", s)
	}
}

func TestQuantile(t *testing.T) {
	sorted := []float64{0, 10}
	if got := Quantile(sorted, 0.5); got != 5 {
		t.Fatalf("interpolated median = %v", got)
	}
	if got := Quantile(sorted, 0); got != 0 {
		t.Fatalf("q0 = %v", got)
	}
	if got := Quantile(sorted, 1); got != 10 {
		t.Fatalf("q1 = %v", got)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Fatal("empty quantile should be NaN")
	}
}

func TestMeanInt(t *testing.T) {
	if MeanInt([]int{1, 2, 3}) != 2 {
		t.Fatal("MeanInt broken")
	}
	if MeanInt(nil) != 0 {
		t.Fatal("MeanInt(nil) != 0")
	}
}

func TestLinearFitExact(t *testing.T) {
	xs := []float64{0, 1, 2, 3}
	ys := []float64{1, 3, 5, 7} // y = 2x + 1
	f := LinearFit(xs, ys)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Fatalf("fit %+v", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestLinearFitDegenerate(t *testing.T) {
	if !math.IsNaN(LinearFit([]float64{1}, []float64{2}).Slope) {
		t.Fatal("single point fit should be NaN")
	}
	if !math.IsNaN(LinearFit([]float64{1, 1}, []float64{2, 3}).Slope) {
		t.Fatal("vertical data fit should be NaN")
	}
}

func TestGrowthExponentRecoversPower(t *testing.T) {
	xs := []float64{16, 64, 256, 1024, 4096}
	ys := make([]float64, len(xs))
	for i, x := range xs {
		ys[i] = 3 * math.Pow(x, 0.5)
	}
	f := GrowthExponent(xs, ys)
	if math.Abs(f.Slope-0.5) > 1e-9 {
		t.Fatalf("exponent = %v, want 0.5", f.Slope)
	}
	if f.R2 < 0.999 {
		t.Fatalf("R² = %v", f.R2)
	}
}

func TestGrowthExponentSkipsNonPositive(t *testing.T) {
	f := GrowthExponent([]float64{0, 2, 4, 8}, []float64{-1, 2, 4, 8})
	if math.Abs(f.Slope-1) > 1e-9 {
		t.Fatalf("exponent = %v, want 1 after filtering", f.Slope)
	}
}

func TestHistogram(t *testing.T) {
	h := NewHistogram(0, 10, 5)
	for _, x := range []float64{-1, 0, 1, 5, 9.9, 10, 11} {
		h.Add(x)
	}
	if h.Under != 1 || h.Over != 1 {
		t.Fatalf("under=%d over=%d", h.Under, h.Over)
	}
	if h.Total() != 7 {
		t.Fatalf("total = %d", h.Total())
	}
	if h.Counts[0] != 2 { // 0 and 1 fall in [0,2)
		t.Fatalf("counts = %v", h.Counts)
	}
	if h.String() == "" {
		t.Fatal("empty histogram string")
	}
}

func TestBootstrapCICoversMean(t *testing.T) {
	s := rng.New(1)
	xs := make([]float64, 400)
	for i := range xs {
		xs[i] = s.Float64() * 10 // uniform(0,10), mean 5
	}
	lo, hi := BootstrapCI(xs, 500, 0.95, s.Intn)
	if !(lo < 5 && 5 < hi) {
		t.Fatalf("95%% CI (%v, %v) misses the true mean 5", lo, hi)
	}
	if hi-lo > 2 {
		t.Fatalf("CI too wide: (%v, %v)", lo, hi)
	}
}

func TestBootstrapCIEdge(t *testing.T) {
	lo, hi := BootstrapCI(nil, 100, 0.95, func(int) int { return 0 })
	if !math.IsNaN(lo) || !math.IsNaN(hi) {
		t.Fatal("empty bootstrap should be NaN")
	}
}
