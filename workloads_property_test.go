package hypermis

import (
	"fmt"
	"testing"
)

// Property tests for the two derived workloads — coloring by MIS
// peeling and minimal transversals — across every solver, several
// seeds, and engine parallelism degrees 1, 2 and 8, with a shared
// workspace poisoned between runs (the library-level form of the
// service's pooled-workspace guarantee). The properties:
//
//   - a transversal is exactly the complement of the solved MIS, is a
//     verified minimal transversal, and Size + MISSize == n;
//   - a coloring is proper and complete (VerifyColoring), its class
//     bookkeeping is internally consistent, and class 0 is a maximal
//     independent set (the first peel);
//   - both are bit-identical at any parallelism degree and under
//     workspace reuse.

// workloadCases returns one instance per registered solver, sized so
// multi-class peelings stay fast while the instances remain within
// each algorithm's dimension class.
func workloadCases() []struct {
	name string
	algo Algorithm
	h    *Hypergraph
} {
	return []struct {
		name string
		algo Algorithm
		h    *Hypergraph
	}{
		{"sbl", AlgSBL, RandomMixed(21, 800, 1600, 2, 14)},
		{"bl", AlgBL, RandomUniform(22, 600, 1200, 3)},
		{"kuw", AlgKUW, RandomMixed(23, 800, 1600, 2, 10)},
		{"luby", AlgLuby, RandomGraph(24, 800, 2400)},
		{"greedy", AlgGreedy, RandomMixed(25, 800, 1600, 2, 12)},
		{"permbl", AlgPermBL, RandomMixed(26, 600, 1200, 2, 6)},
	}
}

func TestTransversalDualityProperty(t *testing.T) {
	ws := NewWorkspace()
	for _, c := range workloadCases() {
		t.Run(c.name, func(t *testing.T) {
			n := c.h.N()
			for seed := uint64(0); seed < 3; seed++ {
				opts := Options{Algorithm: c.algo, Seed: seed, Parallelism: 1}
				ref, err := MinimalTransversalCtx(t.Context(), c.h, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := VerifyMinimalTransversal(c.h, ref.Transversal); err != nil {
					t.Fatalf("seed %d: invalid transversal: %v", seed, err)
				}
				if ref.Size+ref.MISSize != n {
					t.Fatalf("seed %d: size %d + mis_size %d != n %d", seed, ref.Size, ref.MISSize, n)
				}
				// Exact duality: the mask is the solved MIS's complement,
				// vertex by vertex.
				mis, err := Solve(c.h, opts)
				if err != nil {
					t.Fatalf("seed %d: solve: %v", seed, err)
				}
				if mis.Size != ref.MISSize {
					t.Fatalf("seed %d: MISSize %d, solve found %d", seed, ref.MISSize, mis.Size)
				}
				for v := range mis.MIS {
					if ref.Transversal[v] == mis.MIS[v] {
						t.Fatalf("seed %d: vertex %d in both/neither of MIS and transversal", seed, v)
					}
				}
				// Parallel degrees through a poisoned reused workspace must
				// reproduce the reference bit for bit.
				for _, p := range []int{2, 8} {
					ws.Poison()
					o := opts
					o.Parallelism = p
					o.Workspace = ws
					got, err := MinimalTransversalCtx(t.Context(), c.h, o)
					if err != nil {
						t.Fatalf("seed %d par %d: %v", seed, p, err)
					}
					if got.Size != ref.Size || got.MISSize != ref.MISSize || got.Rounds != ref.Rounds {
						t.Fatalf("seed %d par %d: (size,mis,rounds)=(%d,%d,%d) != (%d,%d,%d)",
							seed, p, got.Size, got.MISSize, got.Rounds, ref.Size, ref.MISSize, ref.Rounds)
					}
					for v := range ref.Transversal {
						if got.Transversal[v] != ref.Transversal[v] {
							t.Fatalf("seed %d par %d: transversal differs at vertex %d", seed, p, v)
						}
					}
				}
			}
		})
	}
}

func TestColoringProperty(t *testing.T) {
	ws := NewWorkspace()
	for _, c := range workloadCases() {
		t.Run(c.name, func(t *testing.T) {
			n := c.h.N()
			for seed := uint64(0); seed < 3; seed++ {
				opts := Options{Algorithm: c.algo, Seed: seed, Parallelism: 1}
				ref, err := ColorByMISCtx(t.Context(), c.h, opts)
				if err != nil {
					t.Fatalf("seed %d: %v", seed, err)
				}
				if err := VerifyColoring(c.h, ref.Coloring()); err != nil {
					t.Fatalf("seed %d: invalid coloring: %v", seed, err)
				}
				assertColorBookkeeping(t, seed, n, ref)
				// Class 0 is the first peel: a maximal independent set of the
				// whole instance under the class-0 seed.
				class0 := make([]bool, n)
				for v, col := range ref.Colors {
					if col == 0 {
						class0[v] = true
					}
				}
				if err := VerifyMIS(c.h, class0); err != nil {
					t.Fatalf("seed %d: class 0 is not a MIS: %v", seed, err)
				}
				for _, p := range []int{2, 8} {
					ws.Poison()
					o := opts
					o.Parallelism = p
					o.Workspace = ws
					got, err := ColorByMISCtx(t.Context(), c.h, o)
					if err != nil {
						t.Fatalf("seed %d par %d: %v", seed, p, err)
					}
					if got.NumColors != ref.NumColors || got.Rounds != ref.Rounds {
						t.Fatalf("seed %d par %d: (colors,rounds)=(%d,%d) != (%d,%d)",
							seed, p, got.NumColors, got.Rounds, ref.NumColors, ref.Rounds)
					}
					for v := range ref.Colors {
						if got.Colors[v] != ref.Colors[v] {
							t.Fatalf("seed %d par %d: color differs at vertex %d", seed, p, v)
						}
					}
				}
			}
		})
	}
}

// assertColorBookkeeping cross-checks a ColorResult's redundant fields
// against the color vector itself: completeness, in-range colors,
// ClassSizes as exact counts, and per-class telemetry consistency
// (Classes[i].Size matches, residual N shrinks by the preceding class).
func assertColorBookkeeping(t *testing.T, seed uint64, n int, res *ColorResult) {
	t.Helper()
	if len(res.Colors) != n {
		t.Fatalf("seed %d: %d colors for %d vertices", seed, len(res.Colors), n)
	}
	counts := make([]int, res.NumColors)
	for v, col := range res.Colors {
		if col < 0 || col >= res.NumColors {
			t.Fatalf("seed %d: vertex %d has color %d of %d", seed, v, col, res.NumColors)
		}
		counts[col]++
	}
	if len(res.ClassSizes) != res.NumColors || len(res.Classes) != res.NumColors {
		t.Fatalf("seed %d: %d class sizes, %d class records for %d colors",
			seed, len(res.ClassSizes), len(res.Classes), res.NumColors)
	}
	remaining := n
	totalRounds := 0
	for i, cl := range res.Classes {
		if res.ClassSizes[i] != counts[i] || cl.Size != counts[i] {
			t.Fatalf("seed %d: class %d sizes (%d, %d) != recount %d",
				seed, i, res.ClassSizes[i], cl.Size, counts[i])
		}
		if counts[i] == 0 {
			t.Fatalf("seed %d: empty color class %d", seed, i)
		}
		if cl.N != remaining {
			t.Fatalf("seed %d: class %d saw residual n=%d, want %d", seed, i, cl.N, remaining)
		}
		remaining -= counts[i]
		totalRounds += cl.Rounds
	}
	if remaining != 0 {
		t.Fatalf("seed %d: class sizes sum to %d, want %d", seed, n-remaining, n)
	}
	if totalRounds != res.Rounds {
		t.Fatalf("seed %d: class rounds sum to %d, result says %d", seed, totalRounds, res.Rounds)
	}
}

// TestColoringSeedSchedule pins the per-class seed schedule: class c is
// solved with Seed+c, so a standalone solve at the shifted seed must
// reproduce class 0 of the shifted coloring. This is the contract that
// makes colorings cacheable under (digest, algo, seed) keys.
func TestColoringSeedSchedule(t *testing.T) {
	h := RandomMixed(27, 500, 1000, 2, 10)
	opts := Options{Algorithm: AlgGreedy, Seed: 9}
	base, err := ColorByMIS(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	again, err := ColorByMIS(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	if fmt.Sprint(base.Colors) != fmt.Sprint(again.Colors) {
		t.Fatal("coloring not deterministic for equal options")
	}
	mis, err := Solve(h, opts)
	if err != nil {
		t.Fatal(err)
	}
	for v, in := range mis.MIS {
		if in != (base.Colors[v] == 0) {
			t.Fatalf("class 0 differs from the seed-9 MIS at vertex %d", v)
		}
	}
}
