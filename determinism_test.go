package hypermis

import (
	"fmt"
	"runtime"
	"testing"
)

// These tests pin the round engine's core guarantee: a fixed seed
// produces bit-identical output — the same MIS mask and the same round
// count — at any parallelism degree and any GOMAXPROCS. Per-vertex
// randomness is index-addressed (rng.Stream.At), every parallel
// reduction is exact, and shard boundaries only partition work, so
// worker scheduling can never leak into results.

// solverCases returns one instance per solver, sized so the sharded
// code paths are exercised (the mixed instances exceed the parallel
// scan thresholds at n=3000/m=6000).
func solverCases() []struct {
	name string
	algo Algorithm
	h    *Hypergraph
} {
	return []struct {
		name string
		algo Algorithm
		h    *Hypergraph
	}{
		// Dimension 14 exceeds SBL's derived cap D≈10 at this size, so
		// the sampling rounds run (dim ≤ D would short-circuit into the
		// much slower direct-BL path).
		{"sbl", AlgSBL, RandomMixed(11, 3000, 6000, 2, 14)},
		{"bl", AlgBL, RandomUniform(12, 1500, 3000, 3)},
		{"kuw", AlgKUW, RandomMixed(13, 3000, 6000, 2, 10)},
		{"luby", AlgLuby, RandomGraph(14, 3000, 9000)},
		{"permbl", AlgPermBL, RandomMixed(15, 1500, 3000, 2, 6)},
	}
}

func runSolver(t *testing.T, algo Algorithm, h *Hypergraph, seed uint64, parallelism int) *Result {
	t.Helper()
	res, err := Solve(h, Options{Algorithm: algo, Seed: seed, Parallelism: parallelism})
	if err != nil {
		t.Fatalf("solve(algo=%v seed=%d par=%d): %v", algo, seed, parallelism, err)
	}
	return res
}

func assertSameResult(t *testing.T, label string, ref, got *Result) {
	t.Helper()
	if ref.Rounds != got.Rounds {
		t.Fatalf("%s: rounds %d != %d", label, got.Rounds, ref.Rounds)
	}
	if ref.Size != got.Size {
		t.Fatalf("%s: size %d != %d", label, got.Size, ref.Size)
	}
	for v := range ref.MIS {
		if ref.MIS[v] != got.MIS[v] {
			t.Fatalf("%s: MIS differs at vertex %d", label, v)
		}
	}
}

// TestDeterminismAcrossParallelism fuzzes seeds across every solver and
// asserts that engine degrees 1, 2 and 8 produce identical results.
func TestDeterminismAcrossParallelism(t *testing.T) {
	for _, c := range solverCases() {
		t.Run(c.name, func(t *testing.T) {
			for seed := uint64(0); seed < 5; seed++ {
				ref := runSolver(t, c.algo, c.h, seed, 1)
				if err := VerifyMIS(c.h, ref.MIS); err != nil {
					t.Fatalf("seed %d: invalid MIS: %v", seed, err)
				}
				for _, p := range []int{2, 8} {
					got := runSolver(t, c.algo, c.h, seed, p)
					assertSameResult(t, fmt.Sprintf("%s seed=%d par=%d", c.name, seed, p), ref, got)
				}
			}
		})
	}
}

// TestDeterminismAcrossGOMAXPROCS re-runs every solver under
// GOMAXPROCS 1, 2 and 8 (the zero engine tracks GOMAXPROCS) and
// asserts identical output.
func TestDeterminismAcrossGOMAXPROCS(t *testing.T) {
	orig := runtime.GOMAXPROCS(0)
	defer runtime.GOMAXPROCS(orig)
	for _, c := range solverCases() {
		t.Run(c.name, func(t *testing.T) {
			for seed := uint64(0); seed < 2; seed++ {
				runtime.GOMAXPROCS(1)
				ref := runSolver(t, c.algo, c.h, seed, 0)
				for _, procs := range []int{2, 8} {
					runtime.GOMAXPROCS(procs)
					got := runSolver(t, c.algo, c.h, seed, 0)
					assertSameResult(t, fmt.Sprintf("%s seed=%d GOMAXPROCS=%d", c.name, seed, procs), ref, got)
				}
			}
		})
	}
}
