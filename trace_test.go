package hypermis

import (
	"testing"
)

// TestTraceMatchesRounds: Options.Trace yields exactly one record per
// outer solver round, with coherent contents, and leaves the MIS
// untouched (telemetry only).
func TestTraceMatchesRounds(t *testing.T) {
	for _, c := range solverCases() {
		t.Run(c.name, func(t *testing.T) {
			ref := runSolver(t, c.algo, c.h, 3, 1)
			res, err := Solve(c.h, Options{Algorithm: c.algo, Seed: 3, Trace: true})
			if err != nil {
				t.Fatal(err)
			}
			assertSameResult(t, "trace on vs off", ref, res)
			if len(res.Trace) != res.Rounds {
				t.Fatalf("len(Trace) = %d, Rounds = %d", len(res.Trace), res.Rounds)
			}
			for i, r := range res.Trace {
				if r.Round != i {
					t.Fatalf("Trace[%d].Round = %d", i, r.Round)
				}
				if r.N <= 0 {
					t.Fatalf("Trace[%d].N = %d", i, r.N)
				}
				if r.Decided < 0 || r.Elapsed < 0 {
					t.Fatalf("Trace[%d] = %+v", i, r)
				}
			}
		})
	}
}

// TestTraceGreedyEmpty: the sequential baseline has no rounds and
// therefore an empty trace.
func TestTraceGreedyEmpty(t *testing.T) {
	h := RandomMixed(5, 300, 600, 2, 5)
	res, err := Solve(h, Options{Algorithm: AlgGreedy, Trace: true})
	if err != nil {
		t.Fatal(err)
	}
	if len(res.Trace) != 0 || res.Rounds != 0 {
		t.Fatalf("greedy trace = %d records, rounds = %d", len(res.Trace), res.Rounds)
	}
}

// TestRoundObserverStreams: the streaming observer sees the same
// records Trace collects, in order.
func TestRoundObserverStreams(t *testing.T) {
	h := RandomMixed(8, 1000, 2000, 2, 10)
	var streamed []RoundTrace
	res, err := Solve(h, Options{
		Algorithm:     AlgKUW,
		Seed:          7,
		Trace:         true,
		RoundObserver: func(r RoundTrace) { streamed = append(streamed, r) },
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(streamed) != len(res.Trace) {
		t.Fatalf("observer saw %d records, Trace has %d", len(streamed), len(res.Trace))
	}
	for i := range streamed {
		if streamed[i] != res.Trace[i] {
			t.Fatalf("record %d differs: %+v vs %+v", i, streamed[i], res.Trace[i])
		}
	}
}

// TestWorkspaceReuseDeterminism: one workspace recycled across every
// solver — poisoned between solves — produces results bit-identical to
// fresh-workspace runs at several parallelism degrees. This is the
// library-level form of the service's pooling guarantee.
func TestWorkspaceReuseDeterminism(t *testing.T) {
	ws := NewWorkspace()
	for _, p := range []int{1, 2, 8} {
		for _, c := range solverCases() {
			for seed := uint64(0); seed < 2; seed++ {
				ref := runSolver(t, c.algo, c.h, seed, p)
				ws.Poison()
				got, err := Solve(c.h, Options{Algorithm: c.algo, Seed: seed, Parallelism: p, Workspace: ws})
				if err != nil {
					t.Fatalf("%s seed=%d par=%d (reused ws): %v", c.name, seed, p, err)
				}
				assertSameResult(t, c.name+" reused-ws", ref, got)
			}
		}
	}
}
