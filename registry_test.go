package hypermis

import (
	"strings"
	"testing"

	"repro/internal/solver"
)

// algorithmConstants is the full public enum. A new Algorithm constant
// must be added here too — TestRegistryCompleteness then forces it
// through the registry, so the enum, the names list and the dispatch
// can never drift apart again.
var algorithmConstants = []Algorithm{AlgAuto, AlgSBL, AlgBL, AlgKUW, AlgLuby, AlgGreedy, AlgPermBL}

// TestRegistryCompleteness asserts the invariants that replaced the
// old hand-maintained switch dispatch:
//  1. every non-auto Algorithm constant has a registered descriptor,
//  2. every AlgorithmNames entry parses and round-trips through
//     String(), and
//  3. the registry contains nothing the public enum does not name.
func TestRegistryCompleteness(t *testing.T) {
	for _, a := range algorithmConstants {
		if a == AlgAuto {
			continue
		}
		d, ok := solver.Lookup(a)
		if !ok {
			t.Errorf("Algorithm %d (%s) has no registered solver", int(a), a)
			continue
		}
		if d.Solve == nil {
			t.Errorf("%s: registered with nil entry point", d.Name)
		}
		if d.Name != a.String() {
			t.Errorf("descriptor name %q != String() %q", d.Name, a.String())
		}
	}

	if AlgorithmNames[0] != "auto" {
		t.Fatalf("AlgorithmNames[0] = %q, want auto", AlgorithmNames[0])
	}
	if len(AlgorithmNames) != len(algorithmConstants) {
		t.Fatalf("AlgorithmNames has %d entries, enum has %d: %v",
			len(AlgorithmNames), len(algorithmConstants), AlgorithmNames)
	}
	for _, name := range AlgorithmNames {
		a, err := ParseAlgorithm(name)
		if err != nil {
			t.Errorf("ParseAlgorithm(%q): %v", name, err)
			continue
		}
		if got := a.String(); got != name {
			t.Errorf("ParseAlgorithm(%q).String() = %q", name, got)
		}
	}

	// Nothing registered outside the enum.
	enum := map[Algorithm]bool{}
	for _, a := range algorithmConstants {
		enum[a] = true
	}
	for _, d := range solver.Descriptors() {
		if !enum[d.Algo] {
			t.Errorf("registry holds %q (Algorithm %d) absent from the public enum", d.Name, int(d.Algo))
		}
	}

	// The historical menu order is pinned: changing it silently would
	// reorder CLI/HTTP help output.
	if got := strings.Join(AlgorithmNames, " "); got != "auto sbl bl kuw luby greedy permbl" {
		t.Errorf("AlgorithmNames order changed: %q", got)
	}
}

// TestResolveAlgorithmMatchesRegistryRoles pins the auto heuristic now
// encoded in descriptor metadata: Luby for dimension ≤ 2, BL for ≤ 5,
// SBL otherwise.
func TestResolveAlgorithmMatchesRegistryRoles(t *testing.T) {
	cases := []struct {
		h    *Hypergraph
		want Algorithm
	}{
		{RandomGraph(1, 100, 200), AlgLuby},
		{RandomUniform(2, 100, 200, 4), AlgBL},
		{RandomUniform(3, 100, 200, 5), AlgBL},
		{RandomMixed(4, 200, 400, 2, 9), AlgSBL},
	}
	for _, c := range cases {
		if got := ResolveAlgorithm(c.h, AlgAuto); got != c.want {
			t.Errorf("ResolveAlgorithm(dim=%d, auto) = %v, want %v", c.h.Dim(), got, c.want)
		}
		// Explicit algorithms pass through.
		if got := ResolveAlgorithm(c.h, AlgKUW); got != AlgKUW {
			t.Errorf("ResolveAlgorithm(explicit kuw) = %v", got)
		}
	}
}
