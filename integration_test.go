package hypermis

// Integration tests: cross-solver agreement on validity across every
// generator, failure injection, determinism under concurrency, and the
// MIS/transversal duality at scale. These exercise the public API the
// way a downstream user would.

import (
	"fmt"
	"sync"
	"testing"
)

// allAlgorithms lists every solver applicable to general hypergraphs.
var allAlgorithms = []Algorithm{AlgSBL, AlgBL, AlgKUW, AlgGreedy, AlgPermBL}

// generatorMatrix yields a named instance per generator family.
func generatorMatrix(seed uint64, n int) map[string]*Hypergraph {
	return map[string]*Hypergraph{
		"uniform3":  RandomUniform(seed, n, 2*n, 3),
		"uniform5":  RandomUniform(seed+1, n, n, 5),
		"mixed2_8":  RandomMixed(seed+2, n, 2*n, 2, 8),
		"graph":     RandomGraph(seed+3, n, 3*n),
		"linear":    Linear(seed+4, n, n/3, 3),
		"sunflower": Sunflower(seed+5, n, 2, 3, (n-2)/3),
		"planted":   PlantedMIS(seed+6, n, 2*n, 4, n/4),
		"blocks":    BlockPartition(seed+7, n, 8, 3, 4),
	}
}

func TestEverySolverOnEveryGenerator(t *testing.T) {
	const n = 240
	for name, h := range generatorMatrix(1000, n) {
		for _, algo := range allAlgorithms {
			t.Run(fmt.Sprintf("%s/%v", name, algo), func(t *testing.T) {
				res, err := Solve(h, Options{Algorithm: algo, Seed: 9, Alpha: 0.3})
				if err != nil {
					t.Fatalf("%v on %s: %v", algo, name, err)
				}
				if err := VerifyMIS(h, res.MIS); err != nil {
					t.Fatalf("%v on %s: %v", algo, name, err)
				}
			})
		}
		// Luby only on graphs.
		if h.Dim() <= 2 {
			res, err := Solve(h, Options{Algorithm: AlgLuby, Seed: 9})
			if err != nil {
				t.Fatalf("luby on %s: %v", name, err)
			}
			if err := VerifyMIS(h, res.MIS); err != nil {
				t.Fatalf("luby on %s: %v", name, err)
			}
		}
	}
}

func TestConcurrentSolvesAreIsolated(t *testing.T) {
	// The library must be safe for concurrent use on distinct inputs,
	// and seeded determinism must hold under concurrency.
	h := RandomMixed(77, 300, 600, 2, 6)
	ref, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 5, Alpha: 0.3})
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	errs := make([]error, 16)
	for g := 0; g < 16; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			res, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 5, Alpha: 0.3})
			if err != nil {
				errs[g] = err
				return
			}
			for v := range res.MIS {
				if res.MIS[v] != ref.MIS[v] {
					errs[g] = fmt.Errorf("goroutine %d diverged at vertex %d", g, v)
					return
				}
			}
		}(g)
	}
	wg.Wait()
	for _, err := range errs {
		if err != nil {
			t.Fatal(err)
		}
	}
}

func TestDualityAcrossSolvers(t *testing.T) {
	h := RandomMixed(88, 400, 800, 2, 6)
	for _, algo := range allAlgorithms {
		res, err := Solve(h, Options{Algorithm: algo, Seed: 3, Alpha: 0.3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		comp := make([]bool, h.N())
		for v := range comp {
			comp[v] = !res.MIS[v]
		}
		if !IsTransversal(h, comp) {
			t.Fatalf("%v: complement is not a transversal", algo)
		}
		if err := VerifyMinimalTransversal(h, comp); err != nil {
			t.Fatalf("%v: complement not minimal: %v", algo, err)
		}
	}
}

func TestDegenerateInstances(t *testing.T) {
	cases := map[string]*Hypergraph{
		"no vertices":    buildOrDie(t, NewBuilder(0)),
		"edgeless":       buildOrDie(t, NewBuilder(10)),
		"one big edge":   buildOrDie(t, NewBuilder(6).AddEdge(0, 1, 2, 3, 4, 5)),
		"all singletons": buildOrDie(t, NewBuilder(3).AddEdge(0).AddEdge(1).AddEdge(2)),
		"nested edges":   buildOrDie(t, NewBuilder(5).AddEdge(0, 1).AddEdge(0, 1, 2).AddEdge(0, 1, 2, 3)),
		"duplicate-ish":  buildOrDie(t, NewBuilder(4).AddEdge(0, 1).AddEdge(1, 0).AddEdge(0, 1)),
	}
	for name, h := range cases {
		for _, algo := range allAlgorithms {
			res, err := Solve(h, Options{Algorithm: algo, Seed: 2})
			if err != nil {
				t.Fatalf("%s/%v: %v", name, algo, err)
			}
			if err := VerifyMIS(h, res.MIS); err != nil {
				t.Fatalf("%s/%v: %v", name, algo, err)
			}
		}
	}
}

func buildOrDie(t *testing.T, b *Builder) *Hypergraph {
	t.Helper()
	h, err := b.Build()
	if err != nil {
		t.Fatal(err)
	}
	return h
}

func TestLargeScaleSBL(t *testing.T) {
	if testing.Short() {
		t.Skip("large-scale run")
	}
	h := RandomMixed(99, 4096, 8192, 2, 12)
	res, err := Solve(h, Options{Algorithm: AlgSBL, Seed: 1, Alpha: 0.3, CollectCost: true})
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyMIS(h, res.MIS); err != nil {
		t.Fatal(err)
	}
	if res.Depth <= 0 || res.Work <= 0 {
		t.Fatal("cost missing")
	}
	// Depth must be dramatically below the sequential baseline n.
	if res.Depth >= int64(h.N())*4 {
		t.Fatalf("depth %d not sublinear-ish for n=%d", res.Depth, h.N())
	}
}

func TestSizesAgreeLoosely(t *testing.T) {
	// Different solvers produce different MISs, but on symmetric random
	// instances the sizes should agree within a modest band — a cheap
	// cross-validation that nobody returns degenerate sets.
	h := RandomUniform(111, 500, 1000, 3)
	sizes := map[Algorithm]int{}
	for _, algo := range allAlgorithms {
		res, err := Solve(h, Options{Algorithm: algo, Seed: 4, Alpha: 0.3})
		if err != nil {
			t.Fatalf("%v: %v", algo, err)
		}
		sizes[algo] = res.Size
	}
	min, max := h.N(), 0
	for _, s := range sizes {
		if s < min {
			min = s
		}
		if s > max {
			max = s
		}
	}
	if float64(max-min) > 0.2*float64(max) {
		t.Fatalf("suspicious size spread: %v", sizes)
	}
}
